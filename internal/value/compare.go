package value

import (
	"math"
	"sort"
)

// Ternary is the result of a three-valued comparison: TrueT, FalseT or
// UnknownT (null).
type Ternary int

// The three truth values of Cypher's SQL-style logic.
const (
	FalseT Ternary = iota
	TrueT
	UnknownT
)

// ToValue converts the ternary truth value into a Cypher value (true, false
// or null).
func (t Ternary) ToValue() Value {
	switch t {
	case TrueT:
		return NewBool(true)
	case FalseT:
		return NewBool(false)
	default:
		return Null()
	}
}

// TernaryOf converts a Cypher value into a ternary truth value. Null maps to
// UnknownT; any non-boolean, non-null value also maps to UnknownT (the engine
// reports a type error separately where required).
func TernaryOf(v Value) Ternary {
	if IsNull(v) {
		return UnknownT
	}
	if b, ok := AsBool(v); ok {
		if b {
			return TrueT
		}
		return FalseT
	}
	return UnknownT
}

// Equals implements Cypher's equality (the `=` operator): comparisons
// involving null are unknown, numbers compare across int/float, lists and
// maps compare element-wise, and graph entities compare by identifier.
func Equals(a, b Value) Ternary {
	if IsNull(a) || IsNull(b) {
		return UnknownT
	}
	switch av := a.(type) {
	case Bool:
		if bv, ok := b.(Bool); ok {
			return ternaryFromBool(av == bv)
		}
	case Int:
		switch bv := b.(type) {
		case Int:
			return ternaryFromBool(av == bv)
		case Float:
			return ternaryFromBool(float64(av) == float64(bv))
		}
	case Float:
		switch bv := b.(type) {
		case Int:
			return ternaryFromBool(float64(av) == float64(bv))
		case Float:
			return ternaryFromBool(float64(av) == float64(bv))
		}
	case String:
		if bv, ok := b.(String); ok {
			return ternaryFromBool(av == bv)
		}
	case List:
		if bv, ok := b.(List); ok {
			return listEquals(av, bv)
		}
	case Map:
		if bv, ok := b.(Map); ok {
			return mapEquals(av, bv)
		}
	case NodeValue:
		if bv, ok := b.(NodeValue); ok {
			return ternaryFromBool(av.N.ID() == bv.N.ID())
		}
	case RelationshipValue:
		if bv, ok := b.(RelationshipValue); ok {
			return ternaryFromBool(av.R.ID() == bv.R.ID())
		}
	case PathValue:
		if bv, ok := b.(PathValue); ok {
			return pathEquals(av.P, bv.P)
		}
	}
	// Extension kinds (temporal), within the same kind: a type with its own
	// equality (Duration, whose ordering is a 30-days-per-month
	// approximation that must NOT define equality) decides itself;
	// otherwise instants are equal when ordered the same.
	if a.Kind() == b.Kind() {
		if ea, ok := a.(Equatable); ok {
			return ternaryFromBool(ea.EqualTo(b))
		}
		if oa, ok := a.(Orderable); ok {
			if _, ok2 := b.(Orderable); ok2 {
				return ternaryFromBool(oa.CompareTo(b) == 0)
			}
		}
	}
	// Values of different, incomparable kinds are simply not equal.
	return FalseT
}

func ternaryFromBool(b bool) Ternary {
	if b {
		return TrueT
	}
	return FalseT
}

func listEquals(a, b List) Ternary {
	if a.Len() != b.Len() {
		return FalseT
	}
	result := TrueT
	for i := 0; i < a.Len(); i++ {
		switch Equals(a.At(i), b.At(i)) {
		case FalseT:
			return FalseT
		case UnknownT:
			result = UnknownT
		}
	}
	return result
}

func mapEquals(a, b Map) Ternary {
	if a.Len() != b.Len() {
		return FalseT
	}
	result := TrueT
	for _, k := range a.Keys() {
		bv, ok := b.Get(k)
		if !ok {
			return FalseT
		}
		av, _ := a.Get(k)
		switch Equals(av, bv) {
		case FalseT:
			return FalseT
		case UnknownT:
			result = UnknownT
		}
	}
	return result
}

func pathEquals(a, b Path) Ternary {
	if len(a.Nodes) != len(b.Nodes) || len(a.Rels) != len(b.Rels) {
		return FalseT
	}
	for i := range a.Nodes {
		if a.Nodes[i].ID() != b.Nodes[i].ID() {
			return FalseT
		}
	}
	for i := range a.Rels {
		if a.Rels[i].ID() != b.Rels[i].ID() {
			return FalseT
		}
	}
	return TrueT
}

// Less implements the ternary `<` comparison. Comparisons across incomparable
// kinds (e.g. a string and a number) and comparisons involving null are
// unknown.
func Less(a, b Value) Ternary {
	if IsNull(a) || IsNull(b) {
		return UnknownT
	}
	if IsNumber(a) && IsNumber(b) {
		af, _ := AsFloat(a)
		bf, _ := AsFloat(b)
		if _, aInt := a.(Int); aInt {
			if _, bInt := b.(Int); bInt {
				ai, _ := AsInt(a)
				bi, _ := AsInt(b)
				return ternaryFromBool(ai < bi)
			}
		}
		return ternaryFromBool(af < bf)
	}
	if as, ok := AsString(a); ok {
		if bs, ok2 := AsString(b); ok2 {
			return ternaryFromBool(as < bs)
		}
	}
	if ab, ok := AsBool(a); ok {
		if bb, ok2 := AsBool(b); ok2 {
			return ternaryFromBool(!ab && bb)
		}
	}
	if al, ok := AsList(a); ok {
		if bl, ok2 := AsList(b); ok2 {
			return listLess(al, bl)
		}
	}
	return UnknownT
}

func listLess(a, b List) Ternary {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	for i := 0; i < n; i++ {
		lt := Less(a.At(i), b.At(i))
		if lt == UnknownT {
			return UnknownT
		}
		if lt == TrueT {
			return TrueT
		}
		gt := Less(b.At(i), a.At(i))
		if gt == TrueT {
			return FalseT
		}
		if gt == UnknownT {
			return UnknownT
		}
	}
	return ternaryFromBool(a.Len() < b.Len())
}

// Greater, LessEq and GreaterEq derive from Less and Equals with three-valued
// semantics.

// Greater implements the ternary `>` comparison.
func Greater(a, b Value) Ternary { return Less(b, a) }

// LessEq implements the ternary `<=` comparison.
func LessEq(a, b Value) Ternary {
	lt := Less(a, b)
	if lt == TrueT {
		return TrueT
	}
	eq := Equals(a, b)
	if eq == TrueT {
		return TrueT
	}
	if lt == UnknownT || eq == UnknownT {
		return UnknownT
	}
	return FalseT
}

// GreaterEq implements the ternary `>=` comparison.
func GreaterEq(a, b Value) Ternary { return LessEq(b, a) }

// orderabilityRank defines the total order across kinds used by ORDER BY and
// by min()/max() aggregation (openCypher orderability): maps, nodes,
// relationships, lists, paths, strings, booleans, numbers, null (null sorts
// last in ascending order).
func orderabilityRank(v Value) int {
	switch v.Kind() {
	case KindMap:
		return 0
	case KindNode:
		return 1
	case KindRelationship:
		return 2
	case KindList:
		return 3
	case KindPath:
		return 4
	case KindDateTime:
		return 5
	case KindDate:
		return 6
	case KindDuration:
		return 7
	case KindString:
		return 8
	case KindBool:
		return 9
	case KindInt, KindFloat:
		return 10
	case KindNull:
		return 11
	default:
		return 12
	}
}

// Compare imposes a total order on all values (the "orderability" used by
// ORDER BY, DISTINCT on composite rows, and min/max). It never returns
// unknown: nulls order after every other value, and values of different kinds
// order by a fixed kind precedence.
func Compare(a, b Value) int {
	ra, rb := orderabilityRank(a), orderabilityRank(b)
	if ra != rb {
		return ra - rb
	}
	switch av := a.(type) {
	case nullValue:
		return 0
	case Bool:
		bv := b.(Bool)
		switch {
		case av == bv:
			return 0
		case !bool(av):
			return -1
		default:
			return 1
		}
	case Int:
		return compareNumbers(a, b)
	case Float:
		return compareNumbers(a, b)
	case String:
		bv := b.(String)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		default:
			return 0
		}
	case List:
		bv := b.(List)
		n := av.Len()
		if bv.Len() < n {
			n = bv.Len()
		}
		for i := 0; i < n; i++ {
			if c := Compare(av.At(i), bv.At(i)); c != 0 {
				return c
			}
		}
		return av.Len() - bv.Len()
	case Map:
		bv := b.(Map)
		ak, bk := av.Keys(), bv.Keys()
		n := len(ak)
		if len(bk) < n {
			n = len(bk)
		}
		for i := 0; i < n; i++ {
			if ak[i] != bk[i] {
				if ak[i] < bk[i] {
					return -1
				}
				return 1
			}
			ava, _ := av.Get(ak[i])
			bva, _ := bv.Get(bk[i])
			if c := Compare(ava, bva); c != 0 {
				return c
			}
		}
		return len(ak) - len(bk)
	case NodeValue:
		bv := b.(NodeValue)
		return int(av.N.ID() - bv.N.ID())
	case RelationshipValue:
		bv := b.(RelationshipValue)
		return int(av.R.ID() - bv.R.ID())
	case PathValue:
		bv := b.(PathValue)
		if d := len(av.P.Nodes) - len(bv.P.Nodes); d != 0 {
			return d
		}
		for i := range av.P.Nodes {
			if d := av.P.Nodes[i].ID() - bv.P.Nodes[i].ID(); d != 0 {
				return int(d)
			}
		}
		for i := range av.P.Rels {
			if d := av.P.Rels[i].ID() - bv.P.Rels[i].ID(); d != 0 {
				return int(d)
			}
		}
		return 0
	default:
		// Extension kinds (temporal) implement Orderable; fall back to string
		// comparison to keep the order total.
		if oa, ok := a.(Orderable); ok {
			if ob, ok2 := b.(Orderable); ok2 {
				return oa.CompareTo(ob)
			}
		}
		as, bs := a.String(), b.String()
		switch {
		case as < bs:
			return -1
		case as > bs:
			return 1
		default:
			return 0
		}
	}
}

// Orderable is implemented by extension value kinds (such as the temporal
// types) that define their own ordering within their kind.
type Orderable interface {
	Value
	// CompareTo returns a negative, zero or positive number depending on
	// whether the receiver orders before, equal to or after other. It is only
	// called with another value of the same kind.
	CompareTo(other Value) int
}

// Equatable is implemented by extension value kinds whose equality is finer
// than their ordering — Duration orders by an approximate nominal length
// (months as 30 days) but is equal only component-wise, so
// duration({months: 1}) <> duration({days: 30}).
type Equatable interface {
	Value
	// EqualTo reports whether other (a value of the same kind) is equal to
	// the receiver.
	EqualTo(other Value) bool
}

func compareNumbers(a, b Value) int {
	ai, aIsInt := a.(Int)
	bi, bIsInt := b.(Int)
	if aIsInt && bIsInt {
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		default:
			return 0
		}
	}
	af, _ := AsFloat(a)
	bf, _ := AsFloat(b)
	// NaN orders after all other numbers, consistently.
	aNaN, bNaN := math.IsNaN(af), math.IsNaN(bf)
	switch {
	case aNaN && bNaN:
		return 0
	case aNaN:
		return 1
	case bNaN:
		return -1
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// Equivalent reports whether two values are equivalent for the purposes of
// DISTINCT and grouping: like Equals but null is equivalent to null and NaN
// to NaN.
func Equivalent(a, b Value) bool {
	return Compare(a, b) == 0
}

// SortValues sorts a slice of values in ascending orderability order.
func SortValues(vs []Value) {
	sort.SliceStable(vs, func(i, j int) bool { return Compare(vs[i], vs[j]) < 0 })
}
