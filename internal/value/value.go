// Package value implements the Cypher value system described in Section 4.1 of
// "Cypher: An Evolving Query Language for Property Graphs" (SIGMOD 2018).
//
// The set V of values comprises identifiers (nodes, relationships), base types
// (integers, floats, strings, booleans), null, lists, maps, and paths. The
// package also implements the SQL-style three-valued logic, the equality and
// orderability rules, and the arithmetic used by Cypher expressions.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind int

// The kinds of Cypher values.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindList
	KindMap
	KindNode
	KindRelationship
	KindPath
	KindDate
	KindDateTime
	KindDuration
)

// String returns the Cypher-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindList:
		return "LIST"
	case KindMap:
		return "MAP"
	case KindNode:
		return "NODE"
	case KindRelationship:
		return "RELATIONSHIP"
	case KindPath:
		return "PATH"
	case KindDate:
		return "DATE"
	case KindDateTime:
		return "DATETIME"
	case KindDuration:
		return "DURATION"
	default:
		return fmt.Sprintf("KIND(%d)", int(k))
	}
}

// Value is a Cypher value. All implementations are immutable once constructed;
// lists and maps must not be mutated after being wrapped in a Value.
type Value interface {
	// Kind reports the dynamic type of the value.
	Kind() Kind
	// String renders the value in Cypher literal syntax (nodes and
	// relationships are rendered in the ASCII-art style used by the paper).
	String() string
}

// Node is the view of a property graph node exposed to the value system. The
// graph package provides the concrete implementation; keeping this an
// interface avoids an import cycle while letting expressions access labels and
// properties directly.
type Node interface {
	// ID returns the node identifier (an element of the set N in the paper).
	ID() int64
	// Labels returns the label set lambda(n), sorted.
	Labels() []string
	// HasLabel reports whether the node carries the given label.
	HasLabel(label string) bool
	// Property returns iota(n, key), or Null() if the property is absent.
	Property(key string) Value
	// PropertyKeys returns the keys on which iota(n, .) is defined, sorted.
	PropertyKeys() []string
}

// Relationship is the view of a property graph relationship exposed to the
// value system.
type Relationship interface {
	// ID returns the relationship identifier (an element of the set R).
	ID() int64
	// RelType returns tau(r), the relationship type.
	RelType() string
	// StartNodeID returns src(r).
	StartNodeID() int64
	// EndNodeID returns tgt(r).
	EndNodeID() int64
	// Property returns iota(r, key), or Null() if the property is absent.
	Property(key string) Value
	// PropertyKeys returns the keys on which iota(r, .) is defined, sorted.
	PropertyKeys() []string
}

// nullValue is the unique null value.
type nullValue struct{}

// Bool is a Cypher boolean.
type Bool bool

// Int is a Cypher 64-bit integer.
type Int int64

// Float is a Cypher 64-bit floating point number.
type Float float64

// String_ would clash with the method name; the string value type is String.
// String is a Cypher string value.
type String string

// List is a Cypher list value. The element slice must not be mutated after
// construction.
type List struct {
	elems []Value
}

// Map is a Cypher map value. The underlying map must not be mutated after
// construction.
type Map struct {
	entries map[string]Value
}

// NodeValue wraps a graph node as a value.
type NodeValue struct {
	N Node
}

// RelationshipValue wraps a graph relationship as a value.
type RelationshipValue struct {
	R Relationship
}

// Path is an alternating sequence of nodes and relationships
// n1 r1 n2 ... n_{m-1} r_{m-1} n_m as defined in Section 4.1 of the paper.
// A path always contains at least one node; len(Rels) == len(Nodes)-1.
type Path struct {
	Nodes []Node
	Rels  []Relationship
}

// PathValue wraps a Path as a value.
type PathValue struct {
	P Path
}

var theNull = nullValue{}

// Null returns the Cypher null value.
func Null() Value { return theNull }

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Bool(b) }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Int(i) }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Float(f) }

// NewString returns a string value.
func NewString(s string) Value { return String(s) }

// NewList returns a list value owning the given elements.
func NewList(elems ...Value) Value { return List{elems: elems} }

// NewListOf returns a list value that adopts the given slice without copying.
func NewListOf(elems []Value) Value { return List{elems: elems} }

// NewMap returns a map value that adopts the given map without copying.
func NewMap(entries map[string]Value) Value {
	if entries == nil {
		entries = map[string]Value{}
	}
	return Map{entries: entries}
}

// NewNode wraps a node as a value.
func NewNode(n Node) Value { return NodeValue{N: n} }

// NewRelationship wraps a relationship as a value.
func NewRelationship(r Relationship) Value { return RelationshipValue{R: r} }

// NewPath wraps a path as a value.
func NewPath(p Path) Value { return PathValue{P: p} }

// Kind implementations.

// Kind reports KindNull.
func (nullValue) Kind() Kind { return KindNull }

// Kind reports KindBool.
func (Bool) Kind() Kind { return KindBool }

// Kind reports KindInt.
func (Int) Kind() Kind { return KindInt }

// Kind reports KindFloat.
func (Float) Kind() Kind { return KindFloat }

// Kind reports KindString.
func (String) Kind() Kind { return KindString }

// Kind reports KindList.
func (List) Kind() Kind { return KindList }

// Kind reports KindMap.
func (Map) Kind() Kind { return KindMap }

// Kind reports KindNode.
func (NodeValue) Kind() Kind { return KindNode }

// Kind reports KindRelationship.
func (RelationshipValue) Kind() Kind { return KindRelationship }

// Kind reports KindPath.
func (PathValue) Kind() Kind { return KindPath }

// String renderings.

func (nullValue) String() string { return "null" }

func (b Bool) String() string {
	if bool(b) {
		return "true"
	}
	return "false"
}

func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

func (f Float) String() string {
	v := float64(f)
	if math.IsInf(v, 1) {
		return "Infinity"
	}
	if math.IsInf(v, -1) {
		return "-Infinity"
	}
	if math.IsNaN(v) {
		return "NaN"
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// Ensure a float always renders distinguishably from an integer.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func (s String) String() string { return "'" + strings.ReplaceAll(string(s), "'", "\\'") + "'" }

func (l List) String() string {
	parts := make([]string, len(l.elems))
	for i, e := range l.elems {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func (m Map) String() string {
	keys := m.Keys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+": "+m.entries[k].String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (nv NodeValue) String() string {
	var sb strings.Builder
	sb.WriteString("(")
	for _, l := range nv.N.Labels() {
		sb.WriteString(":")
		sb.WriteString(l)
	}
	keys := nv.N.PropertyKeys()
	if len(keys) > 0 {
		if len(nv.N.Labels()) > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString("{")
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k)
			sb.WriteString(": ")
			sb.WriteString(nv.N.Property(k).String())
		}
		sb.WriteString("}")
	}
	sb.WriteString(")")
	return sb.String()
}

func (rv RelationshipValue) String() string {
	var sb strings.Builder
	sb.WriteString("[:")
	sb.WriteString(rv.R.RelType())
	keys := rv.R.PropertyKeys()
	if len(keys) > 0 {
		sb.WriteString(" {")
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k)
			sb.WriteString(": ")
			sb.WriteString(rv.R.Property(k).String())
		}
		sb.WriteString("}")
	}
	sb.WriteString("]")
	return sb.String()
}

func (pv PathValue) String() string {
	var sb strings.Builder
	for i, n := range pv.P.Nodes {
		if i > 0 {
			r := pv.P.Rels[i-1]
			if r.StartNodeID() == pv.P.Nodes[i-1].ID() {
				sb.WriteString("-")
				sb.WriteString(RelationshipValue{R: r}.String())
				sb.WriteString("->")
			} else {
				sb.WriteString("<-")
				sb.WriteString(RelationshipValue{R: r}.String())
				sb.WriteString("-")
			}
		}
		sb.WriteString(NodeValue{N: n}.String())
	}
	return sb.String()
}

// Accessors.

// Bool reports the Go boolean of a Bool value.
func (b Bool) Bool() bool { return bool(b) }

// Int64 reports the Go int64 of an Int value.
func (i Int) Int64() int64 { return int64(i) }

// Float64 reports the Go float64 of a Float value.
func (f Float) Float64() float64 { return float64(f) }

// Str reports the Go string of a String value.
func (s String) Str() string { return string(s) }

// Len returns the number of elements in the list.
func (l List) Len() int { return len(l.elems) }

// At returns the i-th element of the list; callers must bounds-check.
func (l List) At(i int) Value { return l.elems[i] }

// Elements returns the backing slice of the list. Callers must not mutate it.
func (l List) Elements() []Value { return l.elems }

// Len returns the number of entries in the map.
func (m Map) Len() int { return len(m.entries) }

// Get returns the value stored under key and whether it is present.
func (m Map) Get(key string) (Value, bool) {
	v, ok := m.entries[key]
	return v, ok
}

// Keys returns the map keys in sorted order.
func (m Map) Keys() []string {
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Entries returns the backing map. Callers must not mutate it.
func (m Map) Entries() map[string]Value { return m.entries }

// Length returns the number of relationships in the path (possibly zero).
func (p Path) Length() int { return len(p.Rels) }

// Start returns the first node of the path.
func (p Path) Start() Node { return p.Nodes[0] }

// End returns the last node of the path.
func (p Path) End() Node { return p.Nodes[len(p.Nodes)-1] }

// IsNull reports whether v is the null value.
func IsNull(v Value) bool { return v == nil || v.Kind() == KindNull }

// AsBool extracts a Go bool, reporting ok=false if v is not a boolean.
func AsBool(v Value) (b, ok bool) {
	if bv, isB := v.(Bool); isB {
		return bool(bv), true
	}
	return false, false
}

// AsInt extracts a Go int64, reporting ok=false if v is not an integer.
func AsInt(v Value) (int64, bool) {
	if iv, isI := v.(Int); isI {
		return int64(iv), true
	}
	return 0, false
}

// AsFloat extracts a Go float64 from an Int or Float value.
func AsFloat(v Value) (float64, bool) {
	switch t := v.(type) {
	case Int:
		return float64(t), true
	case Float:
		return float64(t), true
	}
	return 0, false
}

// AsString extracts a Go string, reporting ok=false if v is not a string.
func AsString(v Value) (string, bool) {
	if sv, isS := v.(String); isS {
		return string(sv), true
	}
	return "", false
}

// AsList extracts a List, reporting ok=false if v is not a list.
func AsList(v Value) (List, bool) {
	lv, ok := v.(List)
	return lv, ok
}

// AsMap extracts a Map, reporting ok=false if v is not a map.
func AsMap(v Value) (Map, bool) {
	mv, ok := v.(Map)
	return mv, ok
}

// AsNode extracts the node from a node value.
func AsNode(v Value) (Node, bool) {
	if nv, ok := v.(NodeValue); ok {
		return nv.N, true
	}
	return nil, false
}

// AsRelationship extracts the relationship from a relationship value.
func AsRelationship(v Value) (Relationship, bool) {
	if rv, ok := v.(RelationshipValue); ok {
		return rv.R, true
	}
	return nil, false
}

// AsPath extracts the path from a path value.
func AsPath(v Value) (Path, bool) {
	if pv, ok := v.(PathValue); ok {
		return pv.P, true
	}
	return Path{}, false
}

// IsNumber reports whether v is an Int or a Float.
func IsNumber(v Value) bool {
	k := v.Kind()
	return k == KindInt || k == KindFloat
}

// Storable reports whether v can be stored as a property value: null (which
// removes the property), scalars, extension kinds such as the temporals, and
// lists/maps of storable values. Graph entities — nodes, relationships,
// paths — are not storable, in Cypher semantics and in the storage layer's
// on-disk codec alike.
func Storable(v Value) bool {
	switch v.Kind() {
	case KindNode, KindRelationship, KindPath:
		return false
	case KindList:
		l, _ := AsList(v)
		for _, e := range l.Elements() {
			if !Storable(e) {
				return false
			}
		}
	case KindMap:
		m, _ := AsMap(v)
		for _, e := range m.Entries() {
			if !Storable(e) {
				return false
			}
		}
	}
	return true
}

// FromGo converts a native Go value into a Cypher value. Supported inputs are
// nil, bool, all integer widths, float32/64, string, []any, map[string]any,
// []Value, map[string]Value and Value itself. Unsupported inputs yield an
// error so that callers surface bad parameters instead of panicking.
func FromGo(v any) (Value, error) {
	switch t := v.(type) {
	case nil:
		return Null(), nil
	case Value:
		return t, nil
	case bool:
		return NewBool(t), nil
	case int:
		return NewInt(int64(t)), nil
	case int8:
		return NewInt(int64(t)), nil
	case int16:
		return NewInt(int64(t)), nil
	case int32:
		return NewInt(int64(t)), nil
	case int64:
		return NewInt(t), nil
	case uint:
		return NewInt(int64(t)), nil
	case uint8:
		return NewInt(int64(t)), nil
	case uint16:
		return NewInt(int64(t)), nil
	case uint32:
		return NewInt(int64(t)), nil
	case float32:
		return NewFloat(float64(t)), nil
	case float64:
		return NewFloat(t), nil
	case string:
		return NewString(t), nil
	case []Value:
		return NewListOf(t), nil
	case map[string]Value:
		return NewMap(t), nil
	case []any:
		elems := make([]Value, len(t))
		for i, e := range t {
			ev, err := FromGo(e)
			if err != nil {
				return nil, err
			}
			elems[i] = ev
		}
		return NewListOf(elems), nil
	case map[string]any:
		entries := make(map[string]Value, len(t))
		for k, e := range t {
			ev, err := FromGo(e)
			if err != nil {
				return nil, err
			}
			entries[k] = ev
		}
		return NewMap(entries), nil
	default:
		return nil, fmt.Errorf("value: unsupported Go type %T", v)
	}
}

// ToGo converts a Cypher value back into a plain Go value: nil, bool, int64,
// float64, string, []any, map[string]any, or the Node/Relationship/Path
// interfaces for graph entities.
func ToGo(v Value) any {
	switch t := v.(type) {
	case nullValue:
		return nil
	case Bool:
		return bool(t)
	case Int:
		return int64(t)
	case Float:
		return float64(t)
	case String:
		return string(t)
	case List:
		out := make([]any, t.Len())
		for i, e := range t.Elements() {
			out[i] = ToGo(e)
		}
		return out
	case Map:
		out := make(map[string]any, t.Len())
		for k, e := range t.Entries() {
			out[k] = ToGo(e)
		}
		return out
	case NodeValue:
		return t.N
	case RelationshipValue:
		return t.R
	case PathValue:
		return t.P
	default:
		return v
	}
}
