package lexer

import (
	"strings"
	"testing"
)

func types(toks []Token) []Type {
	out := make([]Type, len(toks))
	for i, t := range toks {
		out[i] = t.Type
	}
	return out
}

func TestTokenizeBasicQuery(t *testing.T) {
	toks, err := Tokenize("MATCH (r:Researcher)-[:AUTHORS]->(p) RETURN r.name, count(p) AS n")
	if err != nil {
		t.Fatal(err)
	}
	want := []Type{
		Keyword, LParen, Ident, Colon, Ident, RParen, Minus, LBracket, Colon,
		Ident, RBracket, Minus, Gt, LParen, Ident, RParen, Keyword, Ident, Dot,
		Ident, Comma, Ident, LParen, Ident, RParen, Keyword, Ident, EOF,
	}
	got := types(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v (%q), want %v", i, got[i], toks[i].Text, want[i])
		}
	}
	if toks[0].Text != "MATCH" || toks[0].Type != Keyword {
		t.Errorf("keywords should be upper-cased: %+v", toks[0])
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("match MaTcH RETURN return")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:4] {
		if tok.Type != Keyword {
			t.Errorf("expected keyword, got %v %q", tok.Type, tok.Text)
		}
	}
	if !toks[0].Is("MATCH") || !toks[2].Is("RETURN") {
		t.Errorf("Is() should match canonical keyword names")
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("0 42 3.14 1e3 2.5e-2 10..20")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != Integer || toks[0].IntVal != 0 {
		t.Errorf("0: %+v", toks[0])
	}
	if toks[1].Type != Integer || toks[1].IntVal != 42 {
		t.Errorf("42: %+v", toks[1])
	}
	if toks[2].Type != Float || toks[2].FltVal != 3.14 {
		t.Errorf("3.14: %+v", toks[2])
	}
	if toks[3].Type != Float || toks[3].FltVal != 1000 {
		t.Errorf("1e3: %+v", toks[3])
	}
	if toks[4].Type != Float || toks[4].FltVal != 0.025 {
		t.Errorf("2.5e-2: %+v", toks[4])
	}
	// "10..20" must lex as Integer DotDot Integer, not a float.
	if toks[5].Type != Integer || toks[6].Type != DotDot || toks[7].Type != Integer {
		t.Errorf("range lexing wrong: %v %v %v", toks[5], toks[6], toks[7])
	}
}

func TestStringsAndEscapes(t *testing.T) {
	toks, err := Tokenize(`'it''s' "double" 'a\'b' "tab\tnewline\n" 'A'`)
	if err != nil {
		t.Fatal(err)
	}
	// 'it''s' is two adjacent strings in our lexer ('it' and 's') since
	// Cypher uses backslash escapes; check the simple ones.
	if toks[0].Type != StringLit || toks[0].StrVal != "it" {
		t.Errorf("first string: %+v", toks[0])
	}
	var vals []string
	for _, tok := range toks {
		if tok.Type == StringLit {
			vals = append(vals, tok.StrVal)
		}
	}
	found := map[string]bool{}
	for _, v := range vals {
		found[v] = true
	}
	if !found["double"] || !found["a'b"] || !found["tab\tnewline\n"] || !found["A"] {
		t.Errorf("string values wrong: %q", vals)
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokenize("'abc"); err == nil {
		t.Errorf("unterminated string should fail")
	}
	if _, err := Tokenize("RETURN 'a\nb'"); err == nil {
		t.Errorf("newline in string should fail")
	}
	if _, err := Tokenize("'bad \\q escape'"); err == nil {
		t.Errorf("invalid escape should fail")
	}
}

func TestOperators(t *testing.T) {
	toks, err := Tokenize("<= >= <> =~ .. += < > = + - * / % ^ | ; $param")
	if err != nil {
		t.Fatal(err)
	}
	want := []Type{Le, Ge, Neq, RegexEq, DotDot, PlusEq, Lt, Gt, Eq, Plus, Minus, Star, Slash, Percent, Caret, Pipe, Semicolon, Parameter, EOF}
	got := types(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[17].StrVal != "param" {
		t.Errorf("parameter name = %q", toks[17].StrVal)
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokenize("MATCH // line comment\n (n) /* block\n comment */ RETURN n")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Type != EOF {
			texts = append(texts, tok.Text)
		}
	}
	joined := strings.Join(texts, " ")
	if joined != "MATCH ( n ) RETURN n" {
		t.Errorf("comments not skipped: %q", joined)
	}
	if _, err := Tokenize("/* unterminated"); err == nil {
		t.Errorf("unterminated block comment should fail")
	}
}

func TestEscapedIdentifiers(t *testing.T) {
	toks, err := Tokenize("MATCH (`weird name`:`Label``with backtick`) RETURN 1")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Type != Ident || toks[2].StrVal != "weird name" || !toks[2].Escaped {
		t.Errorf("escaped identifier: %+v", toks[2])
	}
	if toks[4].StrVal != "Label`with backtick" {
		t.Errorf("doubled backtick: %+v", toks[4])
	}
	if _, err := Tokenize("`unterminated"); err == nil {
		t.Errorf("unterminated escaped identifier should fail")
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("MATCH\n  (n)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token position: %+v", toks[0])
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("second token position: line %d col %d", toks[1].Line, toks[1].Col)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Tokenize("MATCH (n) RETURN n ~"); err == nil {
		t.Errorf("stray '~' should be rejected")
	}
	if _, err := Tokenize("$ "); err == nil {
		t.Errorf("bare '$' should be rejected")
	}
	if _, err := Tokenize("RETURN 99999999999999999999"); err == nil {
		t.Errorf("out-of-range integer should be rejected")
	}
	var lexErr *Error
	_, err := Tokenize("RETURN ~")
	if err == nil {
		t.Fatalf("expected error")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error should carry position: %v", err)
	}
	_ = lexErr
}

func TestTokenString(t *testing.T) {
	toks, _ := Tokenize("MATCH 'x' $p")
	if toks[0].String() != `"MATCH"` {
		t.Errorf("keyword String = %s", toks[0].String())
	}
	if toks[1].String() != `string "x"` {
		t.Errorf("string literal String = %s", toks[1].String())
	}
	if toks[2].String() != "$p" {
		t.Errorf("parameter String = %s", toks[2].String())
	}
	if toks[3].String() != "end of input" {
		t.Errorf("EOF String = %s", toks[3].String())
	}
}
