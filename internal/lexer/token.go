// Package lexer turns Cypher query text into a stream of tokens consumed by
// the parser. The token set covers the core language of the paper (Figures 3
// and 5) plus the update clauses and the ORDER BY / SKIP / LIMIT modifiers.
package lexer

import "fmt"

// Type identifies the kind of a token.
type Type int

// Token types.
const (
	EOF Type = iota
	Ident
	Keyword
	Integer
	Float
	StringLit
	Parameter // $name

	// Punctuation and operators.
	LParen    // (
	RParen    // )
	LBracket  // [
	RBracket  // ]
	LBrace    // {
	RBrace    // }
	Comma     // ,
	Dot       // .
	DotDot    // ..
	Colon     // :
	Semicolon // ;
	Pipe      // |
	Plus      // +
	PlusEq    // +=
	Minus     // -
	Star      // *
	Slash     // /
	Percent   // %
	Caret     // ^
	Eq        // =
	Neq       // <>
	Lt        // <
	Gt        // >
	Le        // <=
	Ge        // >=
	RegexEq   // =~
)

// Token is a lexical token with its source position (1-based line and column).
type Token struct {
	Type    Type
	Text    string // raw text; for keywords the upper-cased form
	Line    int
	Col     int
	IntVal  int64   // valid when Type == Integer
	FltVal  float64 // valid when Type == Float
	StrVal  string  // unescaped value for StringLit, name for Parameter/Ident
	Escaped bool    // true for backtick-escaped identifiers
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Type {
	case EOF:
		return "end of input"
	case StringLit:
		return fmt.Sprintf("string %q", t.StrVal)
	case Parameter:
		return "$" + t.StrVal
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Is reports whether the token is the given keyword (case-insensitive match
// was already performed by the lexer; keywords are stored upper-case).
func (t Token) Is(keyword string) bool {
	return t.Type == Keyword && t.Text == keyword
}

// keywords is the set of reserved words recognised by the lexer. Cypher
// keywords are case-insensitive.
var keywords = map[string]bool{
	"MATCH": true, "OPTIONAL": true, "WHERE": true, "WITH": true,
	"RETURN": true, "UNWIND": true, "AS": true, "UNION": true, "ALL": true,
	"CREATE": true, "MERGE": true, "SET": true, "DELETE": true,
	"DETACH": true, "REMOVE": true, "ORDER": true, "BY": true, "SKIP": true,
	"LIMIT": true, "DISTINCT": true, "AND": true, "OR": true, "XOR": true,
	"NOT": true, "IN": true, "STARTS": true, "ENDS": true, "CONTAINS": true,
	"IS": true, "NULL": true, "TRUE": true, "FALSE": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "ASC": true,
	"DESC": true, "ASCENDING": true, "DESCENDING": true, "ON": true,
	"EXISTS": true, "CALL": true, "YIELD": true, "FROM": true, "GRAPH": true,
}
