package lexer

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Error is a lexical error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("syntax error at line %d, column %d: %s", e.Line, e.Col, e.Msg)
}

// Lexer tokenizes Cypher source text.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New creates a lexer over the given source text.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the entire input and returns the token stream (terminated by
// an EOF token) or the first lexical error.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Type == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) errorf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *Lexer) peekAt(offset int) rune {
	pos := l.pos
	for i := 0; i < offset; i++ {
		if pos >= len(l.src) {
			return 0
		}
		_, w := utf8.DecodeRuneInString(l.src[pos:])
		pos += w
	}
	if pos >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[pos:])
	return r
}

func (l *Lexer) advance() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	r, w := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() error {
	for {
		r := l.peek()
		switch {
		case r == 0:
			return nil
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peekAt(1) == '/':
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case r == '/' && l.peekAt(1) == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.peek() == 0 {
					return &Error{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
				}
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
}

// Next returns the next token in the input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	r := l.peek()
	if r == 0 {
		return Token{Type: EOF, Line: line, Col: col}, nil
	}

	switch {
	case unicode.IsLetter(r) || r == '_':
		return l.scanIdentOrKeyword(line, col), nil
	case unicode.IsDigit(r):
		return l.scanNumber(line, col)
	case r == '\'' || r == '"':
		return l.scanString(line, col)
	case r == '`':
		return l.scanEscapedIdent(line, col)
	case r == '$':
		l.advance()
		if !unicode.IsLetter(l.peek()) && l.peek() != '_' && !unicode.IsDigit(l.peek()) {
			return Token{}, &Error{Line: line, Col: col, Msg: "expected parameter name after '$'"}
		}
		start := l.pos
		for unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_' {
			l.advance()
		}
		name := l.src[start:l.pos]
		return Token{Type: Parameter, Text: "$" + name, StrVal: name, Line: line, Col: col}, nil
	}

	// Punctuation, including two-character operators.
	two := func(t Type, text string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Type: t, Text: text, Line: line, Col: col}, nil
	}
	one := func(t Type, text string) (Token, error) {
		l.advance()
		return Token{Type: t, Text: text, Line: line, Col: col}, nil
	}
	switch r {
	case '(':
		return one(LParen, "(")
	case ')':
		return one(RParen, ")")
	case '[':
		return one(LBracket, "[")
	case ']':
		return one(RBracket, "]")
	case '{':
		return one(LBrace, "{")
	case '}':
		return one(RBrace, "}")
	case ',':
		return one(Comma, ",")
	case ';':
		return one(Semicolon, ";")
	case '|':
		return one(Pipe, "|")
	case ':':
		return one(Colon, ":")
	case '.':
		if l.peekAt(1) == '.' {
			return two(DotDot, "..")
		}
		return one(Dot, ".")
	case '+':
		if l.peekAt(1) == '=' {
			return two(PlusEq, "+=")
		}
		return one(Plus, "+")
	case '-':
		return one(Minus, "-")
	case '*':
		return one(Star, "*")
	case '/':
		return one(Slash, "/")
	case '%':
		return one(Percent, "%")
	case '^':
		return one(Caret, "^")
	case '=':
		if l.peekAt(1) == '~' {
			return two(RegexEq, "=~")
		}
		return one(Eq, "=")
	case '<':
		switch l.peekAt(1) {
		case '>':
			return two(Neq, "<>")
		case '=':
			return two(Le, "<=")
		}
		return one(Lt, "<")
	case '>':
		if l.peekAt(1) == '=' {
			return two(Ge, ">=")
		}
		return one(Gt, ">")
	}
	return Token{}, l.errorf("unexpected character %q", r)
}

func (l *Lexer) scanIdentOrKeyword(line, col int) Token {
	start := l.pos
	for unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_' {
		l.advance()
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		return Token{Type: Keyword, Text: upper, StrVal: text, Line: line, Col: col}
	}
	return Token{Type: Ident, Text: text, StrVal: text, Line: line, Col: col}
}

func (l *Lexer) scanEscapedIdent(line, col int) (Token, error) {
	l.advance() // consume opening backtick
	var sb strings.Builder
	for {
		r := l.peek()
		if r == 0 {
			return Token{}, &Error{Line: line, Col: col, Msg: "unterminated escaped identifier"}
		}
		l.advance()
		if r == '`' {
			if l.peek() == '`' { // doubled backtick escapes a backtick
				l.advance()
				sb.WriteRune('`')
				continue
			}
			break
		}
		sb.WriteRune(r)
	}
	return Token{Type: Ident, Text: sb.String(), StrVal: sb.String(), Escaped: true, Line: line, Col: col}, nil
}

func (l *Lexer) scanNumber(line, col int) (Token, error) {
	start := l.pos
	isFloat := false
	for unicode.IsDigit(l.peek()) {
		l.advance()
	}
	// A '.' followed by a digit continues the number; '..' is a range token.
	if l.peek() == '.' && unicode.IsDigit(l.peekAt(1)) {
		isFloat = true
		l.advance()
		for unicode.IsDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		next := l.peekAt(1)
		nextNext := l.peekAt(2)
		if unicode.IsDigit(next) || ((next == '+' || next == '-') && unicode.IsDigit(nextNext)) {
			isFloat = true
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			for unicode.IsDigit(l.peek()) {
				l.advance()
			}
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, &Error{Line: line, Col: col, Msg: "invalid float literal " + text}
		}
		return Token{Type: Float, Text: text, FltVal: f, Line: line, Col: col}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, &Error{Line: line, Col: col, Msg: "invalid integer literal " + text}
	}
	return Token{Type: Integer, Text: text, IntVal: i, Line: line, Col: col}, nil
}

func (l *Lexer) scanString(line, col int) (Token, error) {
	quote := l.advance()
	var sb strings.Builder
	for {
		r := l.peek()
		if r == 0 || r == '\n' {
			return Token{}, &Error{Line: line, Col: col, Msg: "unterminated string literal"}
		}
		l.advance()
		if r == quote {
			break
		}
		if r == '\\' {
			esc := l.advance()
			switch esc {
			case 'n':
				sb.WriteRune('\n')
			case 't':
				sb.WriteRune('\t')
			case 'r':
				sb.WriteRune('\r')
			case 'b':
				sb.WriteRune('\b')
			case 'f':
				sb.WriteRune('\f')
			case '\\', '\'', '"', '`':
				sb.WriteRune(esc)
			case 'u':
				var hex [4]rune
				for i := 0; i < 4; i++ {
					h := l.advance()
					if !isHexDigit(h) {
						return Token{}, &Error{Line: line, Col: col, Msg: "invalid unicode escape"}
					}
					hex[i] = h
				}
				code, err := strconv.ParseUint(string(hex[:]), 16, 32)
				if err != nil {
					return Token{}, &Error{Line: line, Col: col, Msg: "invalid unicode escape"}
				}
				sb.WriteRune(rune(code))
			default:
				return Token{}, &Error{Line: line, Col: col, Msg: fmt.Sprintf("invalid escape sequence \\%c", esc)}
			}
			continue
		}
		sb.WriteRune(r)
	}
	val := sb.String()
	return Token{Type: StringLit, Text: string(quote) + val + string(quote), StrVal: val, Line: line, Col: col}, nil
}

func isHexDigit(r rune) bool {
	return (r >= '0' && r <= '9') || (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F')
}
