package storage

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

// commitBatch journals one batch of mutations through the store's normal
// Record → Append → Sync path, exactly as a write query would.
func commitBatch(t *testing.T, s *Store, muts ...graph.Mutation) {
	t.Helper()
	for _, m := range muts {
		s.Record(m)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func nodeMut(id int64, label string) graph.Mutation {
	return graph.Mutation{Kind: graph.MutCreateNode, ID: id, Labels: []string{label},
		Props: map[string]value.Value{"id": value.NewInt(id)}}
}

func TestReadEntriesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	s, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	start := s.Position()
	if start.Gen != 0 || start.Offset != WALStartOffset || start.Seq != 0 {
		t.Fatalf("fresh position = %v, want gen 0 @%d (entry 0)", start, WALStartOffset)
	}

	const batches = 5
	for i := 0; i < batches; i++ {
		commitBatch(t, s, nodeMut(int64(i+1), "N"))
	}

	frames, next, err := s.ReadEntries(start, 1<<20)
	if err != nil {
		t.Fatalf("read entries: %v", err)
	}
	if len(frames) != batches {
		t.Fatalf("got %d frames, want %d", len(frames), batches)
	}
	if next != s.Position() {
		t.Fatalf("next = %v, want live position %v", next, s.Position())
	}
	if next.Seq != batches {
		t.Fatalf("next.Seq = %d, want %d", next.Seq, batches)
	}
	// Frames decode back to the committed mutations and tile the log exactly.
	off := WALStartOffset
	for i, f := range frames {
		if f.Offset != off {
			t.Fatalf("frame %d at offset %d, want %d", i, f.Offset, off)
		}
		muts, err := DecodeBatch(f.Payload)
		if err != nil {
			t.Fatalf("frame %d decode: %v", i, err)
		}
		if len(muts) != 1 || muts[0].ID != int64(i+1) {
			t.Fatalf("frame %d decoded %+v", i, muts)
		}
		off = f.End()
	}
	// Caught up: empty read, same position.
	frames, again, err := s.ReadEntries(next, 1<<20)
	if err != nil || len(frames) != 0 || again != next {
		t.Fatalf("caught-up read = %d frames, %v, %v", len(frames), again, err)
	}
}

func TestReadEntriesChunking(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	s, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		commitBatch(t, s, nodeMut(int64(i+1), "N"))
	}
	// A 1-byte budget still makes progress: one whole frame per call.
	pos := Position{Gen: 0, Offset: WALStartOffset}
	total := 0
	for {
		frames, next, err := s.ReadEntries(pos, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) == 0 {
			break
		}
		if len(frames) != 1 {
			t.Fatalf("budget 1 byte returned %d frames", len(frames))
		}
		total++
		pos = next
	}
	if total != 10 {
		t.Fatalf("streamed %d frames, want 10", total)
	}
}

func TestReadEntriesTruncatedAndAhead(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	s, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	commitBatch(t, s, nodeMut(1, "N"))
	g.CreateNode([]string{"N"}, nil)
	if err := s.Checkpoint(g); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// A generation the checkpoint truncated away.
	if _, _, err := s.ReadEntries(Position{Gen: 0, Offset: WALStartOffset}, 1<<20); !errors.Is(err, ErrPositionTruncated) {
		t.Fatalf("stale gen: err = %v, want ErrPositionTruncated", err)
	}
	// A generation the leader has never reached.
	if _, _, err := s.ReadEntries(Position{Gen: 99, Offset: WALStartOffset}, 1<<20); !errors.Is(err, ErrFollowerAhead) {
		t.Fatalf("future gen: err = %v, want ErrFollowerAhead", err)
	}
	// An offset beyond the live log's end.
	pos := s.Position()
	pos.Offset += 1000
	if _, _, err := s.ReadEntries(pos, 1<<20); !errors.Is(err, ErrFollowerAhead) {
		t.Fatalf("future offset: err = %v, want ErrFollowerAhead", err)
	}
}

func TestCommitSignalWakesOnAppend(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	s, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sig := s.CommitSignal()
	select {
	case <-sig:
		t.Fatal("signal fired before any commit")
	default:
	}
	commitBatch(t, s, nodeMut(1, "N"))
	select {
	case <-sig:
	default:
		t.Fatal("signal did not fire after a commit")
	}
}

// TestFollowerByteIdenticalPrefix replays a leader's stream frames into a
// follower store and asserts the follower's WAL file is byte-for-byte the
// leader's — the invariant that makes crash-resume offset arithmetic work.
func TestFollowerByteIdenticalPrefix(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	lg := graph.New()
	leader, err := Open(leaderDir, lg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	for i := 0; i < 4; i++ {
		commitBatch(t, leader, nodeMut(int64(i+1), "N"))
	}

	fg := graph.New()
	f, err := OpenFollower(followerDir, fg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	frames, _, err := leader.ReadEntries(f.Position(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frames {
		if err := f.AppendEntry(Position{Gen: 0, Offset: fr.Offset}, 0, fr.Payload); err != nil {
			t.Fatalf("append entry: %v", err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, want := f.Position(), leader.Position(); got != want {
		t.Fatalf("follower position %v, leader %v", got, want)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	lb, err := os.ReadFile(filepath.Join(leaderDir, walName(0)))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(filepath.Join(followerDir, walName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, fb) {
		t.Fatalf("follower WAL differs from leader WAL (%d vs %d bytes)", len(fb), len(lb))
	}
}

func TestFollowerAppendRejectsGapsAndOverlaps(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	f, err := OpenFollower(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload, err := EncodeBatch([]graph.Mutation{nodeMut(1, "N")})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong generation.
	if err := f.AppendEntry(Position{Gen: 3, Offset: WALStartOffset}, 0, payload); err == nil {
		t.Fatal("append with wrong generation should fail")
	}
	// A gap: entry claims to start past the local end.
	if err := f.AppendEntry(Position{Gen: 0, Offset: WALStartOffset + 100}, 0, payload); err == nil {
		t.Fatal("append with an offset gap should fail")
	}
	// The exact end appends fine; replaying the same entry again (overlap)
	// does not.
	if err := f.AppendEntry(Position{Gen: 0, Offset: WALStartOffset}, 0, payload); err != nil {
		t.Fatalf("append at the exact end: %v", err)
	}
	if err := f.AppendEntry(Position{Gen: 0, Offset: WALStartOffset}, 0, payload); err == nil {
		t.Fatal("re-appending an already-journaled entry should fail")
	}
}

// TestFollowerRecovery restarts a follower store and checks the recovered
// position equals what was journaled — including when the final frame is torn
// (stream died mid-append), which must truncate away cleanly.
func TestFollowerRecovery(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	f, err := OpenFollower(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var entries [][]byte
	for i := 0; i < 3; i++ {
		payload, err := EncodeBatch([]graph.Mutation{nodeMut(int64(i+1), "N")})
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, payload)
		if err := f.AppendEntry(f.Position(), 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	want := f.Position()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean restart resumes at the journaled position with the graph rebuilt.
	g2 := graph.New()
	f2, err := OpenFollower(dir, g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := f2.Position(); got != want {
		t.Fatalf("recovered position %v, want %v", got, want)
	}
	if n := len(g2.Nodes()); n != 3 {
		t.Fatalf("recovered %d nodes, want 3", n)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: append half an entry's bytes as if the stream died
	// mid-write.
	wf, err := os.OpenFile(filepath.Join(dir, walName(0)), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	wf.Close()

	g3 := graph.New()
	f3, err := OpenFollower(dir, g3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	if !f3.Recovery().TornTail {
		t.Fatal("torn tail not detected")
	}
	if got := f3.Position(); got != want {
		t.Fatalf("post-tear position %v, want %v", got, want)
	}
	// The log is writable again at the recovered position.
	if err := f3.AppendEntry(f3.Position(), 0, entries[0]); err != nil {
		t.Fatalf("append after torn-tail truncation: %v", err)
	}
}

func TestInstallSnapshot(t *testing.T) {
	leaderDir := t.TempDir()
	lg := graph.New()
	leader, err := Open(leaderDir, lg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	// Build leader state and checkpoint so generation 1 has a snapshot.
	for i := 0; i < 3; i++ {
		n := lg.CreateNode([]string{"S"}, map[string]value.Value{"i": value.NewInt(int64(i))})
		commitBatch(t, leader, graph.Mutation{Kind: graph.MutCreateNode, ID: n.ID(), Labels: []string{"S"},
			Props: map[string]value.Value{"i": value.NewInt(int64(i))}})
	}
	if err := leader.Checkpoint(lg); err != nil {
		t.Fatal(err)
	}
	gen, rc, size, err := leader.LiveSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap := make([]byte, size)
	if _, err := io.ReadFull(rc, snap); err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if gen != 1 {
		t.Fatalf("live snapshot generation %d, want 1", gen)
	}

	fg := graph.New()
	f, err := OpenFollower(t.TempDir(), fg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// A truncated transfer must be rejected without changing the store.
	if _, _, _, err := f.InstallSnapshot(gen, bytes.NewReader(snap[:len(snap)/2])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	// A bit-flipped transfer likewise.
	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, _, _, err := f.InstallSnapshot(gen, bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if pos := f.Position(); pos.Gen != 0 {
		t.Fatalf("failed install moved the store to generation %d", pos.Gen)
	}

	// The intact snapshot installs and moves the generation.
	img, _, _, err := f.InstallSnapshot(gen, bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	if len(img) != 3 {
		t.Fatalf("installed image has %d records, want 3", len(img))
	}
	if pos := f.Position(); pos.Gen != 1 || pos.Offset != WALStartOffset || pos.Seq != 0 {
		t.Fatalf("post-install position %v", pos)
	}
	// Installing an older (or same) generation must be refused.
	if _, _, _, err := f.InstallSnapshot(gen, bytes.NewReader(snap)); err == nil {
		t.Fatal("re-installing the same generation accepted")
	}

	// Restart recovers from the installed snapshot.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g2 := graph.New()
	f2, err := OpenFollower(f.Dir(), g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if n := len(g2.Nodes()); n != 3 {
		t.Fatalf("recovered %d nodes from installed snapshot, want 3", n)
	}
}

func TestLiveSnapshotBeforeFirstCheckpoint(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	s, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, _, err := s.LiveSnapshot(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("generation 0 LiveSnapshot err = %v, want ErrNoSnapshot", err)
	}
}
