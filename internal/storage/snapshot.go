package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

// snapshotImage is the decoded form of a snapshot file: the ID counters plus
// the store contents re-expressed as creation mutations (indexes first, then
// nodes, then relationships, so replaying them in order rebuilds the store).
type snapshotImage struct {
	Gen               uint64
	NextNode, NextRel int64
	Mutations         []graph.Mutation
}

// buildSnapshotImage captures a consistent image of the store. The caller
// must guarantee no concurrent writers (the engine holds its query lock).
func buildSnapshotImage(g *graph.Graph, gen uint64) snapshotImage {
	img := snapshotImage{Gen: gen}
	img.NextNode, img.NextRel = g.IDCounters()
	for _, idx := range g.Indexes() {
		img.Mutations = append(img.Mutations, graph.Mutation{Kind: graph.MutCreateIndex, Label: idx[0], Key: idx[1]})
	}
	for _, n := range g.Nodes() {
		img.Mutations = append(img.Mutations, graph.Mutation{
			Kind:   graph.MutCreateNode,
			ID:     n.ID(),
			Labels: n.Labels(),
			Props:  n.Properties(),
		})
	}
	for _, r := range g.Relationships() {
		img.Mutations = append(img.Mutations, graph.Mutation{
			Kind:  graph.MutCreateRel,
			ID:    r.ID(),
			Start: r.StartNodeID(),
			End:   r.EndNodeID(),
			Label: r.RelType(),
			Props: r.Properties(),
		})
	}
	return img
}

// snapshotChunkTarget is the flush threshold for snapshot record chunks: the
// image is written as a header frame plus a sequence of independently
// checksummed chunk frames, so the whole-image size is unbounded (only a
// single record is subject to maxEntrySize — the same per-record ceiling the
// WAL has). A var so tests can force multi-chunk snapshots cheaply.
var snapshotChunkTarget = 4 << 20

// writeSnapshot writes the image to dir/snapshot-<gen>.snap durably: the
// frames stream to a temp file which is fsynced, renamed into place, and the
// directory fsynced, so the snapshot either exists completely or not at all.
//
// File layout: magic, then framed sections, each [length u32][crc32c u32]
// [payload]. The first frame is the header (gen, ID counters, total record
// count); every further frame is a chunk of records encoded like a WAL batch
// (count + records). readSnapshot requires the frames to account for exactly
// the header's record count — a truncated snapshot never half-loads.
func writeSnapshot(dir string, img snapshotImage) (string, error) {
	final := filepath.Join(dir, snapshotName(img.Gen))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("storage: create snapshot temp: %w", err)
	}
	abort := func(err error) (string, error) {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	writeFrame := func(payload []byte) error {
		if len(payload) > maxEntrySize {
			// Can only happen for a single gigantic record; reject at write
			// time — readSnapshot would reject it as corrupt.
			return fmt.Errorf("storage: snapshot frame of %d bytes exceeds the %d-byte limit", len(payload), maxEntrySize)
		}
		var hdr [entryHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		if _, err := f.Write(hdr[:]); err != nil {
			return fmt.Errorf("storage: write snapshot: %w", err)
		}
		if _, err := f.Write(payload); err != nil {
			return fmt.Errorf("storage: write snapshot: %w", err)
		}
		return nil
	}

	if _, err := f.Write(snapMagic); err != nil {
		return abort(fmt.Errorf("storage: write snapshot: %w", err))
	}
	var hdr encoder
	hdr.u64(img.Gen)
	hdr.i64(img.NextNode)
	hdr.i64(img.NextRel)
	hdr.u32(uint32(len(img.Mutations)))
	if err := writeFrame(hdr.buf); err != nil {
		return abort(err)
	}
	// Stream the records out in bounded chunks.
	i := 0
	for i < len(img.Mutations) {
		var chunk encoder
		chunk.u32(0) // count, patched below
		count := uint32(0)
		for i < len(img.Mutations) && (count == 0 || len(chunk.buf) < snapshotChunkTarget) {
			if err := chunk.encodeMutation(img.Mutations[i]); err != nil {
				return abort(err)
			}
			count++
			i++
		}
		binary.LittleEndian.PutUint32(chunk.buf[0:4], count)
		if err := writeFrame(chunk.buf); err != nil {
			return abort(err)
		}
	}

	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("storage: sync snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("storage: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("storage: publish snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		// Unpublish: an error return must not leave the renamed snapshot
		// behind — the next recovery would prefer it and discard everything
		// committed to the still-live older WAL afterwards.
		os.Remove(final)
		return "", err
	}
	return final, nil
}

// readFrame reads one [length][crc][payload] frame. io.EOF at a frame
// boundary is returned as io.EOF; anything else wrong is ErrCorrupt.
func readFrame(f io.Reader) ([]byte, error) {
	var hdr [entryHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxEntrySize {
		return nil, fmt.Errorf("%w: frame length %d out of range", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated frame body", ErrCorrupt)
	}
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return nil, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// readSnapshot loads and validates a snapshot file.
func readSnapshot(path string) (snapshotImage, error) {
	var img snapshotImage
	f, err := os.Open(path)
	if err != nil {
		return img, fmt.Errorf("storage: open snapshot: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return img, fmt.Errorf("storage: snapshot too short: %w", err)
	}
	if string(magic) != string(snapMagic) {
		return img, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, magic)
	}
	header, err := readFrame(br)
	if err != nil {
		return img, fmt.Errorf("storage: snapshot header: %w", err)
	}
	d := decoder{buf: header}
	if img.Gen, err = d.u64(); err != nil {
		return img, err
	}
	if img.NextNode, err = d.i64(); err != nil {
		return img, err
	}
	if img.NextRel, err = d.i64(); err != nil {
		return img, err
	}
	total, err := d.u32()
	if err != nil {
		return img, err
	}
	if d.remaining() != 0 {
		return img, fmt.Errorf("%w: %d trailing bytes in snapshot header", ErrCorrupt, d.remaining())
	}
	img.Mutations = make([]graph.Mutation, 0, total)
	for {
		payload, err := readFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return img, fmt.Errorf("storage: snapshot chunk: %w", err)
		}
		muts, err := decodeBatch(payload)
		if err != nil {
			return img, fmt.Errorf("storage: snapshot chunk: %w", err)
		}
		img.Mutations = append(img.Mutations, muts...)
	}
	if uint32(len(img.Mutations)) != total {
		return img, fmt.Errorf("%w: snapshot has %d records, header promises %d", ErrCorrupt, len(img.Mutations), total)
	}
	return img, nil
}

func snapshotName(gen uint64) string { return fmt.Sprintf("snapshot-%06d.snap", gen) }
func walName(gen uint64) string      { return fmt.Sprintf("wal-%06d.log", gen) }

// syncDir fsyncs a directory so renames and creations within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	return nil
}
