package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graph"
)

// DumpWAL prints a human-readable listing of every entry in a WAL file:
// offsets, payload sizes, and the decoded mutation records, followed by a
// torn-tail diagnosis. It is the forensic tool for corrupt or surprising
// logs (`cypher-bench -waldump <path>`).
func DumpWAL(w io.Writer, path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %d bytes\n", path, fi.Size())
	batches := 0
	validEnd, torn, records, err := replayWAL(path, func(e walEntry) error {
		batches++
		fmt.Fprintf(w, "  entry @%-8d payload=%-6d records=%d\n", e.Offset, e.Length, len(e.Mutations))
		for _, m := range e.Mutations {
			fmt.Fprintf(w, "    %s\n", describeMutation(m))
		}
		return nil
	})
	if err != nil {
		// A checksum-valid entry that fails to decode is exactly the kind of
		// corruption this tool exists to diagnose — report it inline rather
		// than aborting the dump (the entries before it are already printed).
		fmt.Fprintf(w, "  CORRUPT: %v\n  %d batches, %d records decoded before the corrupt frame\n", err, batches, records)
		return nil
	}
	fmt.Fprintf(w, "  %d batches, %d records, valid through offset %d\n", batches, records, validEnd)
	switch {
	case torn:
		fmt.Fprintf(w, "  TORN TAIL: %d trailing bytes fail checksum/framing and would be truncated on recovery\n", fi.Size()-validEnd)
	case fi.Size() > validEnd:
		fmt.Fprintf(w, "  note: %d bytes beyond last valid entry\n", fi.Size()-validEnd)
	default:
		fmt.Fprintf(w, "  clean tail\n")
	}
	return nil
}

// DumpSnapshot prints a summary of a snapshot file.
func DumpSnapshot(w io.Writer, path string) error {
	img, err := readSnapshot(path)
	if err != nil {
		return err
	}
	nodes, rels, indexes := 0, 0, 0
	for _, m := range img.Mutations {
		switch m.Kind {
		case graph.MutCreateNode:
			nodes++
		case graph.MutCreateRel:
			rels++
		case graph.MutCreateIndex:
			indexes++
		}
	}
	fmt.Fprintf(w, "%s: generation %d, %d nodes, %d relationships, %d indexes, next ids (node %d, rel %d)\n",
		path, img.Gen, nodes, rels, indexes, img.NextNode, img.NextRel)
	return nil
}

// DumpDir dumps every snapshot and WAL file in a data directory, newest
// generation last.
func DumpDir(w io.Writer, dir string) error {
	snaps, wals, err := scanDir(dir)
	if err != nil {
		return err
	}
	if len(snaps) == 0 && len(wals) == 0 {
		fmt.Fprintf(w, "%s: no snapshot or wal files\n", dir)
		return nil
	}
	for _, gen := range snaps {
		if err := DumpSnapshot(w, filepath.Join(dir, snapshotName(gen))); err != nil {
			fmt.Fprintf(w, "%s: UNREADABLE: %v\n", filepath.Join(dir, snapshotName(gen)), err)
		}
	}
	for _, gen := range wals {
		if err := DumpWAL(w, filepath.Join(dir, walName(gen))); err != nil {
			return err
		}
	}
	return nil
}

// Dump inspects path: a directory is dumped with DumpDir, a .snap file with
// DumpSnapshot, anything else as a WAL file.
func Dump(w io.Writer, path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.IsDir() {
		return DumpDir(w, path)
	}
	if strings.HasSuffix(path, ".snap") {
		return DumpSnapshot(w, path)
	}
	return DumpWAL(w, path)
}

func describeMutation(m graph.Mutation) string {
	switch m.Kind {
	case graph.MutCreateNode:
		return fmt.Sprintf("%s id=%d labels=%v props=%d", m.Kind, m.ID, m.Labels, len(m.Props))
	case graph.MutCreateRel:
		return fmt.Sprintf("%s id=%d %d-[:%s]->%d props=%d", m.Kind, m.ID, m.Start, m.Label, m.End, len(m.Props))
	case graph.MutDeleteNode, graph.MutDeleteRel:
		return fmt.Sprintf("%s id=%d", m.Kind, m.ID)
	case graph.MutSetNodeProp, graph.MutSetRelProp:
		return fmt.Sprintf("%s id=%d %s=%s", m.Kind, m.ID, m.Key, m.Value)
	case graph.MutReplaceNodeProps, graph.MutReplaceRelProps:
		return fmt.Sprintf("%s id=%d props=%d", m.Kind, m.ID, len(m.Props))
	case graph.MutAddLabel, graph.MutRemoveLabel:
		return fmt.Sprintf("%s id=%d label=%s", m.Kind, m.ID, m.Label)
	case graph.MutCreateIndex, graph.MutDropIndex:
		return fmt.Sprintf("%s (:%s {%s})", m.Kind, m.Label, m.Key)
	default:
		return m.Kind.String()
	}
}
