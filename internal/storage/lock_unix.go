//go:build unix

package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireDirLock takes an exclusive advisory lock on dir/LOCK so two
// processes cannot append to the same WAL (interleaved frames from
// independent file offsets would corrupt it — recovery would truncate at the
// first bad checksum and silently drop everything after). flock is released
// automatically when the process dies, so a SIGKILLed server restarts
// without stale-lock surgery.
func acquireDirLock(dir string) (release func(), err error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: data directory %s is locked by another process: %w", dir, err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
