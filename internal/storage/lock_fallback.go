//go:build !unix

package storage

// acquireDirLock is a no-op on platforms without flock; single-process use
// is then the caller's responsibility.
func acquireDirLock(string) (release func(), err error) {
	return func() {}, nil
}
