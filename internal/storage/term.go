package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Election-term persistence. Each node of a replication cluster keeps a
// monotonic term (and the candidate it voted for in that term) next to its
// WAL generation, in <dir>/term.json. The term is the cluster's logical
// clock: a leader stamps every stream frame with the term it was elected at,
// and followers refuse to append entries from any term older than the newest
// one they have acknowledged — that refusal is what fences a partitioned
// ex-leader's late writes (see ErrStaleTerm and FollowerStore.SetFenceTerm).
//
// The record must be durable BEFORE the vote or campaign it represents takes
// effect: a node that granted a vote for term T, crashed, and forgot it could
// grant a second vote in T to a different candidate and elect two leaders.
// SaveTermRecord therefore writes through a temp file, fsyncs it, renames it
// into place and fsyncs the directory — the same publish discipline as
// snapshots.

// termFileName is the term record's file name inside a data directory.
const termFileName = "term.json"

// TermRecord is a node's persisted election state.
type TermRecord struct {
	// Term is the highest election term this node has seen or campaigned in.
	Term uint64 `json:"term"`
	// VotedFor is the advertised URL of the candidate this node granted its
	// vote to in Term ("" = no vote granted yet this term).
	VotedFor string `json:"votedFor"`
}

// ErrStaleTerm rejects a replicated append whose term is older than the
// fence: the sender is a deposed leader whose writes must not reach the log.
var ErrStaleTerm = errors.New("storage: replicated entry from a stale election term")

// LoadTermRecord reads the persisted term record from dir. A missing file is
// the zero record (fresh node, term 0), not an error.
func LoadTermRecord(dir string) (TermRecord, error) {
	raw, err := os.ReadFile(filepath.Join(dir, termFileName))
	if err != nil {
		if os.IsNotExist(err) {
			return TermRecord{}, nil
		}
		return TermRecord{}, fmt.Errorf("storage: read term record: %w", err)
	}
	var rec TermRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return TermRecord{}, fmt.Errorf("storage: term record %s is corrupt: %w", termFileName, err)
	}
	return rec, nil
}

// SaveTermRecord durably persists rec in dir (temp file + fsync + rename +
// directory fsync). It must return before the vote or candidacy the record
// represents is communicated to any peer.
func SaveTermRecord(dir string, rec TermRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("storage: encode term record: %w", err)
	}
	final := filepath.Join(dir, termFileName)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create term record temp: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: write term record: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: sync term record: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: close term record: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: publish term record: %w", err)
	}
	return syncDir(dir)
}
