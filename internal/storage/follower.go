package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// FollowerStore is the durable half of a read replica. It keeps a data
// directory whose layout mirrors the leader's — the same snapshot-N.snap /
// wal-N.log generation naming, and a WAL that is a byte-identical prefix of
// the leader's wal-N — by journaling the exact frames the replication stream
// delivers. That identity is the whole offset story: the position recovered
// from the local directory after a crash IS the leader position to resume
// streaming from.
//
// A follower never checkpoints on its own (that would fork the generation
// numbering); it only moves to a new generation when the leader has
// truncated past its position and ships it a whole snapshot (InstallSnapshot).
type FollowerStore struct {
	dir  string
	opts Options

	mu     sync.Mutex // guards wal/gen/seq against Close and snapshot installs
	wal    *walFile
	gen    uint64
	seq    uint64
	closed bool

	stop   chan struct{}
	done   sync.WaitGroup
	unlock func()

	// fence is the newest election term this node has acknowledged (voted in
	// or seen declared). AppendEntry refuses entries stamped with an older
	// term: they come from a deposed leader that does not yet know it lost.
	fence atomic.Uint64

	// Counters (atomics: read by /stats while the tailer applies).
	batches  atomic.Uint64
	records  atomic.Uint64
	bytes    atomic.Uint64
	syncs    atomic.Uint64
	installs atomic.Uint64

	recovered RecoveryInfo
}

// OpenFollower opens (creating if necessary) a follower data directory and
// recovers the replicated graph exactly like Open does for a leader: newest
// snapshot, then the WAL tail, with a torn final frame (the stream died
// mid-append) truncated away. The graph must be empty. On return, Position
// is where streaming must resume.
func OpenFollower(dir string, g *graph.Graph, opts Options) (*FollowerStore, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create data dir: %w", err)
	}
	unlock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	fs := &FollowerStore{dir: dir, opts: opts, stop: make(chan struct{}), unlock: unlock}
	defer func() {
		if fs.wal == nil {
			unlock()
		}
	}()

	snaps, wals, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	var img snapshotImage
	if len(snaps) > 0 {
		newest := snaps[len(snaps)-1]
		img, err = readSnapshot(filepath.Join(dir, snapshotName(newest)))
		if err != nil {
			return nil, fmt.Errorf("storage: follower snapshot %s is unreadable (%w); wipe the directory and re-replicate", snapshotName(newest), err)
		}
		fs.gen = newest
	} else if len(wals) > 0 {
		fs.gen = wals[0]
	}
	fs.recovered.Generation = fs.gen
	fs.recovered.SnapshotRecords = len(img.Mutations)
	for _, m := range img.Mutations {
		if err := g.Apply(m); err != nil {
			return nil, fmt.Errorf("storage: apply snapshot record: %w", err)
		}
	}
	g.SetIDCounters(img.NextNode, img.NextRel)

	walPath := filepath.Join(dir, walName(fs.gen))
	if _, statErr := os.Stat(walPath); statErr == nil {
		validEnd, torn, records, err := replayWAL(walPath, func(e walEntry) error {
			for _, m := range e.Mutations {
				if err := g.Apply(m); err != nil {
					return fmt.Errorf("storage: apply wal record at offset %d: %w", e.Offset, err)
				}
			}
			fs.recovered.WALBatches++
			return nil
		})
		if err != nil {
			return nil, err
		}
		fs.recovered.WALRecords = records
		fs.recovered.TornTail = torn
		fs.seq = uint64(fs.recovered.WALBatches)
		w, err := openWALForAppend(walPath, validEnd)
		if err != nil {
			return nil, err
		}
		fs.wal = w
	} else {
		w, err := createWAL(walPath)
		if err != nil {
			return nil, err
		}
		fs.wal = w
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}
	fs.removeOtherGenerations()

	if opts.SyncMode == SyncInterval {
		fs.done.Add(1)
		go fs.backgroundSync()
	}
	return fs, nil
}

// Position returns the follower's durable stream position: everything up to
// it is journaled locally (though possibly not yet fsynced — resuming from a
// slightly stale position after an OS crash only re-requests entries the
// leader still has).
func (fs *FollowerStore) Position() Position {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var end int64
	if fs.wal != nil {
		end = fs.wal.end()
	}
	return Position{Gen: fs.gen, Offset: end, Seq: fs.seq}
}

// SetFenceTerm raises the fence to term: from here on AppendEntry refuses
// entries stamped with any older election term. The fence only moves
// forward; a lower term is ignored (terms are monotonic by construction).
func (fs *FollowerStore) SetFenceTerm(term uint64) {
	for {
		cur := fs.fence.Load()
		if term <= cur || fs.fence.CompareAndSwap(cur, term) {
			return
		}
	}
}

// FenceTerm returns the current fence term.
func (fs *FollowerStore) FenceTerm() uint64 { return fs.fence.Load() }

// AppendEntry journals one shipped entry. pos is the position the entry
// claims to start at (as framed by the leader); it must exactly match the
// local log's end — a gap or overlap means the stream and the local log
// disagree, and appending would corrupt the byte-identical-prefix invariant
// that resume depends on. term is the election term stamped on the entry's
// stream frame; an entry from a term older than the fence is refused with
// ErrStaleTerm (a deposed leader's late write must not reach the log).
// payload must already be checksum-verified by the protocol layer; it is
// re-framed with the same [len][crc] header the leader wrote, reproducing
// the leader's bytes.
func (fs *FollowerStore) AppendEntry(pos Position, term uint64, payload []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed || fs.wal == nil {
		return fmt.Errorf("storage: follower store is closed")
	}
	if fence := fs.fence.Load(); term < fence {
		return fmt.Errorf("%w: entry term %d, fence %d", ErrStaleTerm, term, fence)
	}
	if pos.Gen != fs.gen {
		return fmt.Errorf("storage: stream entry for generation %d, follower log at %d", pos.Gen, fs.gen)
	}
	if end := fs.wal.end(); pos.Offset != end {
		return fmt.Errorf("storage: stream entry at offset %d, follower log ends at %d", pos.Offset, end)
	}
	if _, err := fs.wal.append(payload); err != nil {
		return err
	}
	fs.seq++
	fs.batches.Add(1)
	fs.bytes.Add(uint64(len(payload)))
	return nil
}

// AddRecords accounts mutation records applied from shipped entries (the
// store only sees opaque payloads; the tailer counts after decoding).
func (fs *FollowerStore) AddRecords(n int) { fs.records.Add(uint64(n)) }

// Sync makes the journaled log durable according to the sync mode, exactly
// like the leader-side Store: SyncAlways fsyncs now, SyncInterval leaves it
// to the background timer, SyncNone to the OS.
func (fs *FollowerStore) Sync() error {
	if fs.opts.SyncMode != SyncAlways {
		return nil
	}
	fs.mu.Lock()
	w := fs.wal
	fs.mu.Unlock()
	if w == nil {
		return fmt.Errorf("storage: follower store is closed")
	}
	synced, err := w.syncTo(w.end())
	if err != nil {
		return err
	}
	if synced {
		fs.syncs.Add(1)
	}
	return nil
}

// InstallSnapshot replaces the follower's durable state with a whole
// snapshot shipped by the leader (catch-up after the leader truncated past
// this follower's position). The bytes stream to a temp file, are validated
// by a full decode, and only then renamed into place; the old generation's
// files are removed after the new WAL exists. It returns the decoded image
// so the caller can rebuild the in-memory graph to match.
//
// gen must be ahead of the follower's current generation — installing an
// older snapshot would silently rewind the replica.
func (fs *FollowerStore) InstallSnapshot(gen uint64, r io.Reader) (snapshot []graph.Mutation, nextNode, nextRel int64, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed || fs.wal == nil {
		return nil, 0, 0, fmt.Errorf("storage: follower store is closed")
	}
	if gen <= fs.gen && !(gen == 0 && fs.gen == 0) {
		return nil, 0, 0, fmt.Errorf("storage: refusing to install snapshot generation %d over local generation %d", gen, fs.gen)
	}
	final := filepath.Join(fs.dir, snapshotName(gen))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("storage: create snapshot temp: %w", err)
	}
	if _, err := io.Copy(f, r); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, 0, 0, fmt.Errorf("storage: download snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, 0, 0, fmt.Errorf("storage: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, 0, 0, fmt.Errorf("storage: close snapshot: %w", err)
	}
	// Validate before publishing: a truncated or bit-flipped transfer must
	// be rejected here, not discovered at the next restart.
	img, err := readSnapshot(tmp)
	if err != nil {
		os.Remove(tmp)
		return nil, 0, 0, fmt.Errorf("storage: shipped snapshot failed validation: %w", err)
	}
	if img.Gen != gen {
		os.Remove(tmp)
		return nil, 0, 0, fmt.Errorf("storage: shipped snapshot is generation %d, expected %d", img.Gen, gen)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return nil, 0, 0, fmt.Errorf("storage: publish snapshot: %w", err)
	}
	if err := syncDir(fs.dir); err != nil {
		os.Remove(final)
		return nil, 0, 0, err
	}
	// Fresh WAL for the new generation. The old generation's WAL is obsolete
	// the moment the snapshot is published (recovery prefers the newest
	// snapshot), so a crash between these steps is safe.
	walPath := filepath.Join(fs.dir, walName(gen))
	os.Remove(walPath)
	w, err := createWAL(walPath)
	if err != nil {
		return nil, 0, 0, err
	}
	if err := syncDir(fs.dir); err != nil {
		w.close()
		os.Remove(walPath)
		return nil, 0, 0, err
	}
	old := fs.wal
	fs.wal = w
	fs.gen = gen
	fs.seq = 0
	old.close()
	fs.installs.Add(1)
	fs.removeOtherGenerations()
	return img.Mutations, img.NextNode, img.NextRel, nil
}

// removeOtherGenerations deletes snapshot/WAL files of any generation other
// than the live one. Best-effort. Callers hold fs.mu (or own the store
// exclusively during Open).
func (fs *FollowerStore) removeOtherGenerations() {
	snaps, wals, err := scanDir(fs.dir)
	if err != nil {
		return
	}
	for _, gen := range snaps {
		if gen != fs.gen {
			os.Remove(filepath.Join(fs.dir, snapshotName(gen)))
		}
	}
	for _, gen := range wals {
		if gen != fs.gen {
			os.Remove(filepath.Join(fs.dir, walName(gen)))
		}
	}
}

// Recovery returns what OpenFollower found and replayed.
func (fs *FollowerStore) Recovery() RecoveryInfo { return fs.recovered }

// Dir returns the data directory.
func (fs *FollowerStore) Dir() string { return fs.dir }

// Stats reports the follower store's durability counters in the same shape
// as the leader store's, so /stats renders both uniformly.
func (fs *FollowerStore) Stats() Stats {
	fs.mu.Lock()
	gen := fs.gen
	var walSize int64
	if fs.wal != nil {
		walSize = fs.wal.end()
	}
	fs.mu.Unlock()
	return Stats{
		Dir:          fs.dir,
		SyncMode:     fs.opts.SyncMode.String(),
		Generation:   gen,
		Records:      fs.records.Load(),
		Batches:      fs.batches.Load(),
		Bytes:        fs.bytes.Load(),
		Syncs:        fs.syncs.Load(),
		Checkpoints:  fs.installs.Load(), // snapshot installs are the follower's "checkpoints"
		WALSizeBytes: walSize,
		Recovery:     fs.recovered,
	}
}

// Close syncs and releases the files and the directory lock.
func (fs *FollowerStore) Close() error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return nil
	}
	fs.closed = true
	w := fs.wal
	fs.wal = nil
	fs.mu.Unlock()
	close(fs.stop)
	fs.done.Wait()
	var err error
	if w != nil {
		err = w.close()
	}
	fs.unlock()
	return err
}

// Promote converts the follower store into a full leader-side Store over the
// same open WAL, generation and directory lock — no close/reopen, no
// re-recovery. The follower store is dead afterwards (every later call on it
// reports closed, which is what fail-stops a replication tailer still racing
// an apply), and the returned Store owns the files. The caller must hold the
// node's write-exclusion (no query writes exist yet — the engine is still in
// follower role) and should checkpoint promptly: the generation bump is what
// fences the old generation's stream positions.
func (fs *FollowerStore) Promote() (*Store, error) {
	fs.mu.Lock()
	if fs.closed || fs.wal == nil {
		fs.mu.Unlock()
		return nil, fmt.Errorf("storage: cannot promote a closed follower store")
	}
	fs.closed = true
	w := fs.wal
	fs.wal = nil
	gen, seq := fs.gen, fs.seq
	fs.mu.Unlock()
	close(fs.stop)
	fs.done.Wait()

	s := &Store{dir: fs.dir, opts: fs.opts, stop: make(chan struct{}), unlock: fs.unlock}
	s.wal.Store(w)
	s.gen.Store(gen)
	s.walSeq.Store(seq)
	s.recovered = fs.recovered
	if fs.opts.SyncMode == SyncInterval {
		s.done.Add(1)
		go s.backgroundSync()
	}
	return s, nil
}

// backgroundSync is the SyncInterval flusher.
func (fs *FollowerStore) backgroundSync() {
	defer fs.done.Done()
	t := time.NewTicker(fs.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-fs.stop:
			return
		case <-t.C:
			fs.mu.Lock()
			w := fs.wal
			fs.mu.Unlock()
			if w == nil {
				return
			}
			if synced, err := w.syncTo(w.end()); err == nil && synced {
				fs.syncs.Add(1)
			}
		}
	}
}
