package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// SyncMode controls when committed WAL entries are fsynced.
type SyncMode int

// Sync modes.
const (
	// SyncAlways fsyncs at every commit (group commit still coalesces the
	// fsyncs of committers that queue up concurrently). Survives both process
	// crashes and OS/power failures. The default.
	SyncAlways SyncMode = iota
	// SyncInterval writes at every commit but fsyncs on a background timer
	// (Options.SyncEvery). A process crash loses nothing (the OS has the
	// writes); an OS crash can lose up to one interval of commits — each
	// committed batch is still all-or-nothing.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes when it pleases.
	// Fastest, survives process crashes only.
	SyncNone
)

// String names the sync mode (used by flags and /stats).
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SYNCMODE(%d)", int(m))
	}
}

// ParseSyncMode parses a sync-mode flag value.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none", "off":
		return SyncNone, nil
	default:
		return SyncAlways, fmt.Errorf("storage: unknown sync mode %q (want always, interval or none)", s)
	}
}

// Options configures a Store.
type Options struct {
	// SyncMode selects the durability/latency trade-off; default SyncAlways.
	SyncMode SyncMode
	// SyncEvery is the background fsync cadence for SyncInterval
	// (default 100ms).
	SyncEvery time.Duration
}

// Store manages the durable state of one graph: the live WAL generation and
// its snapshot. It receives the graph's mutation stream via Record (wired as
// the graph's mutation hook), batches it per write query, and appends one
// checksummed WAL entry per Commit.
type Store struct {
	dir  string
	opts Options

	// bufMu guards the current uncommitted batch. Record runs inside the
	// graph's write lock; Commit runs at write-query end while the engine
	// still holds its exclusive query lock, so buffered records always belong
	// to exactly one query.
	bufMu    sync.Mutex
	buf      encoder
	bufCount uint32
	recErr   error // first encoding failure of the current batch

	// walMu serializes WAL rotation (Checkpoint) and Close against each
	// other; the live handle and generation themselves are atomics so
	// Append, Sync and Stats never contend with a long-running snapshot.
	walMu sync.Mutex
	wal   atomic.Pointer[walFile]
	gen   atomic.Uint64

	// failMu guards failed. After a WAL append or fsync error the store is
	// fail-stop: the log no longer mirrors the in-memory state (the failed
	// batch's mutations are live in memory but absent from the log), so
	// accepting later batches would journal relationships to entities that
	// recovery cannot rebuild. Every subsequent Commit returns the sticky
	// error until a successful Checkpoint repairs the divergence — the
	// snapshot is built from memory, not the log, so it recaptures
	// everything including the lost batch.
	failMu sync.Mutex
	failed error

	closed atomic.Bool
	stop   chan struct{}
	done   sync.WaitGroup
	unlock func() // releases the data directory's inter-process lock

	// walSeq counts the entries in the live WAL generation (recovered +
	// appended; reset by Checkpoint). It is the Seq component of Position,
	// letting followers report lag in entries, not just bytes.
	walSeq atomic.Uint64

	// notifyMu guards notify, the broadcast channel closed whenever the
	// stream position advances; see CommitSignal.
	notifyMu sync.Mutex
	notify   chan struct{}

	// Counters (atomics: read by /stats while writers commit).
	records     atomic.Uint64
	batches     atomic.Uint64
	bytes       atomic.Uint64
	syncs       atomic.Uint64
	checkpoints atomic.Uint64
	lastCkpt    atomic.Int64 // unix nanos, 0 = never

	// Recovery facts, fixed at Open.
	recovered RecoveryInfo
}

// RecoveryInfo describes what Open found and replayed.
type RecoveryInfo struct {
	// Generation is the live snapshot/WAL generation after recovery.
	Generation uint64
	// SnapshotRecords is the number of records loaded from the snapshot.
	SnapshotRecords int
	// WALRecords is the number of mutation records replayed from the WAL tail.
	WALRecords int
	// WALBatches is the number of committed batches replayed.
	WALBatches int
	// TornTail reports whether a torn final WAL entry was detected (and
	// truncated) during recovery.
	TornTail bool
}

// Stats is a point-in-time view of the store's durability counters.
type Stats struct {
	Dir            string
	SyncMode       string
	Generation     uint64
	Records        uint64 // mutation records journaled since Open
	Batches        uint64 // committed batches since Open
	Bytes          uint64 // WAL payload bytes appended since Open
	Syncs          uint64 // fsyncs issued since Open
	Checkpoints    uint64 // snapshots taken since Open
	WALSizeBytes   int64  // current size of the live WAL file
	LastCheckpoint time.Time
	Recovery       RecoveryInfo
}

// Open opens (creating if necessary) the data directory and recovers the
// graph: the newest valid snapshot is loaded and the matching WAL generation
// replayed on top, truncating a torn final entry if the previous process
// died mid-write. The graph must be empty. On return the caller should
// install s.Record as the graph's mutation hook; until then nothing is
// journaled.
func Open(dir string, g *graph.Graph, opts Options) (*Store, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create data dir: %w", err)
	}
	unlock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, stop: make(chan struct{}), unlock: unlock}
	defer func() {
		// Release the lock on any failed-Open path; on success Close owns it.
		if s.wal.Load() == nil {
			unlock()
		}
	}()

	snaps, wals, err := scanDir(dir)
	if err != nil {
		return nil, err
	}

	// Recover from the newest snapshot. An unreadable snapshot is a hard
	// error, not a fallback: a published snapshot means the generations
	// before it may be gone and commits may live in its WAL — recovering
	// from anything older (or from nothing) would silently resurrect a
	// stale prefix. The operator can inspect the file with the WAL dump
	// tool and decide what to salvage.
	var img snapshotImage
	if len(snaps) > 0 {
		newest := snaps[len(snaps)-1]
		img, err = readSnapshot(filepath.Join(dir, snapshotName(newest)))
		if err != nil {
			return nil, fmt.Errorf("storage: snapshot %s is unreadable (%w); refusing to guess at recovery — inspect with `cypher-bench -waldump %s`", snapshotName(newest), err, dir)
		}
		s.gen.Store(newest)
	} else if len(wals) > 0 {
		// No snapshot: recover from the oldest WAL present (generation 0 of
		// a fresh directory, or whatever survived).
		s.gen.Store(wals[0])
	}
	s.recovered.Generation = s.gen.Load()
	s.recovered.SnapshotRecords = len(img.Mutations)
	for _, m := range img.Mutations {
		if err := g.Apply(m); err != nil {
			return nil, fmt.Errorf("storage: apply snapshot record: %w", err)
		}
	}
	g.SetIDCounters(img.NextNode, img.NextRel)

	walPath := filepath.Join(dir, walName(s.gen.Load()))
	if _, statErr := os.Stat(walPath); statErr == nil {
		validEnd, torn, records, err := replayWAL(walPath, func(e walEntry) error {
			for _, m := range e.Mutations {
				if err := g.Apply(m); err != nil {
					return fmt.Errorf("storage: apply wal record at offset %d: %w", e.Offset, err)
				}
			}
			s.recovered.WALBatches++
			return nil
		})
		if err != nil {
			return nil, err
		}
		s.recovered.WALRecords = records
		s.recovered.TornTail = torn
		s.walSeq.Store(uint64(s.recovered.WALBatches))
		w, err := openWALForAppend(walPath, validEnd)
		if err != nil {
			return nil, err
		}
		s.wal.Store(w)
	} else {
		w, err := createWAL(walPath)
		if err != nil {
			return nil, err
		}
		s.wal.Store(w)
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}

	// Clean up generations older than the live one (left over from a crash
	// between checkpoint and cleanup).
	s.removeStaleGenerations()

	if opts.SyncMode == SyncInterval {
		s.done.Add(1)
		go s.backgroundSync()
	}
	return s, nil
}

// Record journals one mutation into the current batch. It is installed as
// the graph's mutation hook and therefore runs inside the graph's write
// lock; it encodes immediately so the Mutation's live references (label
// slices, property maps) cannot be seen post-mutation.
func (s *Store) Record(m graph.Mutation) {
	s.bufMu.Lock()
	defer s.bufMu.Unlock()
	if s.recErr != nil {
		return
	}
	if err := s.buf.encodeMutation(m); err != nil {
		s.recErr = err
		return
	}
	s.bufCount++
}

// CommitTicket identifies an appended-but-possibly-unsynced batch; pass it
// to Sync to make the batch durable. The zero ticket (empty batch) is a
// no-op to Sync.
type CommitTicket struct {
	w   *walFile
	off int64
}

// Append writes the current batch to the WAL as one checksummed entry,
// WITHOUT fsyncing, and returns a ticket for Sync. The engine calls it at
// the end of every write query while still holding its exclusive query
// lock, so the WAL's batch boundaries are exactly the query boundaries; the
// fsync (Sync) happens after the lock is released, which is what lets
// concurrent committers share fsyncs (group commit) even though the
// appends themselves serialize. A batch is applied all-or-nothing at
// recovery.
func (s *Store) Append() (CommitTicket, error) {
	s.bufMu.Lock()
	if s.recErr != nil {
		err := s.recErr
		s.recErr = nil
		s.buf = encoder{}
		s.bufCount = 0
		s.bufMu.Unlock()
		// The batch's mutations are live in memory but were dropped from the
		// log — same divergence as an append failure, same fail-stop. (The
		// executor rejects non-storable property values before mutating, so
		// this is a defence against encoder bugs, not a normal path.)
		return CommitTicket{}, s.fail(fmt.Errorf("commit: %w", err))
	}
	if s.bufCount == 0 {
		s.bufMu.Unlock()
		return CommitTicket{}, nil
	}
	var e encoder
	e.u32(s.bufCount)
	payload := append(e.buf, s.buf.buf...)
	count := s.bufCount
	s.buf = encoder{}
	s.bufCount = 0
	s.bufMu.Unlock()

	if err := s.failedError(); err != nil {
		return CommitTicket{}, err
	}
	w := s.wal.Load()
	if w == nil {
		// The store was demoted (or closed) out from under a straggling
		// writer; fail-stop rather than crash.
		return CommitTicket{}, s.fail(fmt.Errorf("store is no longer the writable copy"))
	}
	off, err := w.append(payload)
	if err != nil {
		return CommitTicket{}, s.fail(err)
	}
	s.records.Add(uint64(count))
	s.batches.Add(1)
	s.bytes.Add(uint64(len(payload)))
	s.walSeq.Add(1)
	s.notifyCommit()
	return CommitTicket{w: w, off: off}, nil
}

// Sync makes an appended batch durable according to the sync mode. In
// SyncAlways it group-commits: committers whose fsync was already covered by
// a neighbour's (or by a checkpoint rotation closing their WAL generation)
// return immediately. SyncInterval and SyncNone return at once — the
// background timer or the OS flushes.
func (s *Store) Sync(t CommitTicket) error {
	if t.w == nil || s.opts.SyncMode != SyncAlways {
		return nil
	}
	synced, err := t.w.syncTo(t.off)
	if err != nil {
		return s.fail(err)
	}
	if synced {
		s.syncs.Add(1)
	}
	return nil
}

// Commit is Append + Sync in one call, for callers without a lock to get out
// of (Close, engine-level index creation and imports).
func (s *Store) Commit() error {
	t, err := s.Append()
	if err != nil {
		return err
	}
	return s.Sync(t)
}

// fail records the first journaling error and makes the store fail-stop; see
// the failed field for why. Returns the wrapped sticky error.
func (s *Store) fail(err error) error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if s.failed == nil {
		s.failed = fmt.Errorf("storage: WAL diverged from memory (%w); writes are rejected until a Checkpoint succeeds", err)
	}
	return s.failed
}

func (s *Store) failedError() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failed
}

// Checkpoint writes a point-in-time snapshot of the graph to a new
// generation, switches the WAL to that generation, and deletes the previous
// generation's files. The caller must guarantee no concurrent writers (the
// engine holds its query lock in shared mode, which excludes them) and must
// have Committed all buffered records.
//
// Ordering matters for failure atomicity: the new WAL is created BEFORE the
// snapshot is renamed into place. The snapshot's rename is therefore the
// checkpoint's commit point — a failure (or crash) anywhere earlier leaves
// at worst an unpublished wal-(N+1), which recovery and the next Checkpoint
// clean up, while the live generation N keeps accepting and replaying
// commits. Publishing the snapshot first would be a data-loss bug: a
// subsequent createWAL failure would leave an orphan snapshot-(N+1) that the
// next recovery prefers, silently discarding everything committed to wal-N
// after the failed checkpoint.
func (s *Store) Checkpoint(g *graph.Graph) error {
	if s.closed.Load() {
		return fmt.Errorf("storage: checkpoint on closed store")
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()

	newGen := s.gen.Load() + 1
	newWALPath := filepath.Join(s.dir, walName(newGen))
	// A leftover unpublished WAL from a previously failed checkpoint would
	// make O_EXCL creation fail forever; it holds nothing (its snapshot was
	// never published), so clear it.
	os.Remove(newWALPath)
	newWAL, err := createWAL(newWALPath)
	if err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		newWAL.close()
		os.Remove(newWALPath)
		return err
	}
	img := buildSnapshotImage(g, newGen)
	if _, err := writeSnapshot(s.dir, img); err != nil {
		newWAL.close()
		os.Remove(newWALPath)
		return err
	}
	old := s.wal.Load()
	s.wal.Store(newWAL)
	s.gen.Store(newGen)
	s.walSeq.Store(0)
	// Wake stream readers: sessions tailing the old generation must notice
	// the rotation and tell their follower to resync.
	s.notifyCommit()
	old.close()
	s.removeStaleGenerations()
	s.checkpoints.Add(1)
	s.lastCkpt.Store(time.Now().UnixNano())
	// The snapshot captured the full in-memory state, so any earlier
	// WAL-append failure is repaired: resume accepting commits.
	s.failMu.Lock()
	s.failed = nil
	s.failMu.Unlock()
	return nil
}

// Close flushes and syncs the WAL and releases the files and the directory
// lock. The store must not be used afterwards.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	// Wake stream readers so they observe the closed store and end their
	// sessions instead of waiting on a signal that will never come.
	s.notifyCommit()
	close(s.stop)
	s.done.Wait()
	err := s.Commit()
	s.walMu.Lock()
	if cerr := s.wal.Load().close(); err == nil {
		err = cerr
	}
	s.walMu.Unlock()
	s.unlock()
	return err
}

// Demote converts the leader-side store into a FollowerStore over the same
// open WAL, generation and directory lock, for a deposed leader rejoining the
// cluster under a new winner. The caller must guarantee no in-flight write
// queries (the engine switches to follower role under its write lock before
// calling) and that every buffered record was committed. Live replication
// stream sessions are woken and end — ReadEntries observes the closed store —
// so the deposed leader stops feeding its old followers. The Store is dead
// afterwards; the returned FollowerStore owns the files.
func (s *Store) Demote() (*FollowerStore, error) {
	s.bufMu.Lock()
	pending := s.bufCount
	s.bufMu.Unlock()
	if pending != 0 {
		return nil, fmt.Errorf("storage: cannot demote with %d uncommitted buffered records", pending)
	}
	if s.closed.Swap(true) {
		return nil, fmt.Errorf("storage: cannot demote a closed store")
	}
	// Wake stream readers so they observe the closed store and end their
	// sessions (the follower on the other end will resync to the new leader).
	s.notifyCommit()
	close(s.stop)
	s.done.Wait()
	s.walMu.Lock()
	w := s.wal.Load()
	s.wal.Store(nil)
	gen := s.gen.Load()
	seq := s.walSeq.Load()
	s.walMu.Unlock()
	if w == nil {
		return nil, fmt.Errorf("storage: cannot demote a store without an open WAL")
	}
	// Everything appended as leader must be on disk before the node starts
	// comparing positions with (and truncating under) the new leader.
	if _, err := w.syncTo(w.end()); err != nil {
		return nil, err
	}
	fs := &FollowerStore{
		dir:    s.dir,
		opts:   s.opts,
		wal:    w,
		gen:    gen,
		seq:    seq,
		stop:   make(chan struct{}),
		unlock: s.unlock,
	}
	fs.recovered = s.recovered
	if s.opts.SyncMode == SyncInterval {
		fs.done.Add(1)
		go fs.backgroundSync()
	}
	return fs, nil
}

// Recovery returns what Open found and replayed.
func (s *Store) Recovery() RecoveryInfo { return s.recovered }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the durability counters.
func (s *Store) Stats() Stats {
	gen := s.gen.Load()
	var walSize int64
	if w := s.wal.Load(); w != nil {
		walSize = w.end()
	}
	st := Stats{
		Dir:          s.dir,
		SyncMode:     s.opts.SyncMode.String(),
		Generation:   gen,
		Records:      s.records.Load(),
		Batches:      s.batches.Load(),
		Bytes:        s.bytes.Load(),
		Syncs:        s.syncs.Load(),
		Checkpoints:  s.checkpoints.Load(),
		WALSizeBytes: walSize,
		Recovery:     s.recovered,
	}
	if ns := s.lastCkpt.Load(); ns != 0 {
		st.LastCheckpoint = time.Unix(0, ns)
	}
	return st
}

// backgroundSync is the SyncInterval flusher.
func (s *Store) backgroundSync() {
	defer s.done.Done()
	t := time.NewTicker(s.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			w := s.wal.Load()
			if w == nil {
				continue
			}
			if synced, err := w.syncTo(w.end()); err == nil && synced {
				s.syncs.Add(1)
			}
		}
	}
}

// removeStaleGenerations deletes snapshot/WAL files older than the live
// generation, plus unpublished WALs newer than it (left by a checkpoint that
// created wal-(N+1) but failed before publishing snapshot-(N+1) — they
// contain nothing, since commits only move to a new WAL after its snapshot
// is published). Best-effort: failures leave garbage but never break
// recovery.
func (s *Store) removeStaleGenerations() {
	snaps, wals, err := scanDir(s.dir)
	if err != nil {
		return
	}
	published := make(map[uint64]bool, len(snaps))
	live := s.gen.Load()
	for _, gen := range snaps {
		published[gen] = true
		if gen < live {
			os.Remove(filepath.Join(s.dir, snapshotName(gen)))
		}
	}
	for _, gen := range wals {
		if gen < live || (gen > live && !published[gen]) {
			os.Remove(filepath.Join(s.dir, walName(gen)))
		}
	}
}

// scanDir lists the snapshot and WAL generations present, each sorted
// ascending.
func scanDir(dir string) (snaps, wals []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: read data dir: %w", err)
	}
	for _, ent := range entries {
		var gen uint64
		name := ent.Name()
		if n, _ := fmt.Sscanf(name, "snapshot-%d.snap", &gen); n == 1 && name == snapshotName(gen) {
			snaps = append(snaps, gen)
		}
		if n, _ := fmt.Sscanf(name, "wal-%d.log", &gen); n == 1 && name == walName(gen) {
			wals = append(wals, gen)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, nil
}
