package storage

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/temporal"
	"repro/internal/value"
)

// allKindsBatch exercises every mutation kind and every persistable value
// type.
func allKindsBatch() []graph.Mutation {
	props := map[string]value.Value{
		"null":   value.Null(),
		"bool":   value.NewBool(true),
		"int":    value.NewInt(-42),
		"float":  value.NewFloat(3.5),
		"string": value.NewString("héllo \x00 world"),
		"list":   value.NewList(value.NewInt(1), value.NewString("x"), value.NewList(value.NewBool(false))),
		"map": value.NewMap(map[string]value.Value{
			"nested": value.NewList(value.NewFloat(1.25)),
			"s":      value.NewString(""),
		}),
		"date": temporal.Date{Year: 2020, Month: time.March, Day: 14},
		"datetime": temporal.DateTime{
			Date: temporal.Date{Year: 1999, Month: time.December, Day: 31},
			Hour: 23, Minute: 59, Second: 58, Nanosecond: 123456789,
		},
		"duration": temporal.Duration{Months: 1, Days: -2, Seconds: 3600, Nanos: 42},
	}
	return []graph.Mutation{
		{Kind: graph.MutCreateNode, ID: 1, Labels: []string{"A", "B"}, Props: props},
		{Kind: graph.MutCreateNode, ID: 2},
		{Kind: graph.MutCreateRel, ID: 1, Start: 1, End: 2, Label: "REL", Props: map[string]value.Value{"w": value.NewInt(7)}},
		{Kind: graph.MutSetNodeProp, ID: 1, Key: "k", Value: value.NewString("v")},
		{Kind: graph.MutSetNodeProp, ID: 1, Key: "k", Value: value.Null()},
		{Kind: graph.MutSetRelProp, ID: 1, Key: "w", Value: value.NewFloat(2.5)},
		{Kind: graph.MutReplaceNodeProps, ID: 2, Props: map[string]value.Value{"a": value.NewInt(1)}},
		{Kind: graph.MutReplaceRelProps, ID: 1, Props: map[string]value.Value{}},
		{Kind: graph.MutAddLabel, ID: 2, Label: "C"},
		{Kind: graph.MutRemoveLabel, ID: 2, Label: "C"},
		{Kind: graph.MutCreateIndex, Label: "A", Key: "k"},
		{Kind: graph.MutDropIndex, Label: "A", Key: "k"},
		{Kind: graph.MutDeleteRel, ID: 1},
		{Kind: graph.MutDeleteNode, ID: 2},
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	in := allKindsBatch()
	payload, err := encodeBatch(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := decodeBatch(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		got, want := out[i], in[i]
		if got.Kind != want.Kind || got.ID != want.ID || got.Start != want.Start ||
			got.End != want.End || got.Label != want.Label || got.Key != want.Key {
			t.Errorf("record %d: got %+v, want %+v", i, got, want)
		}
		if len(got.Labels) != len(want.Labels) || (len(want.Labels) > 0 && !reflect.DeepEqual(got.Labels, want.Labels)) {
			t.Errorf("record %d labels: got %v, want %v", i, got.Labels, want.Labels)
		}
		if len(got.Props) != propsLenNonNull(want.Props) && len(got.Props) != len(want.Props) {
			t.Errorf("record %d props: got %d entries, want %d", i, len(got.Props), len(want.Props))
		}
		for k, wv := range want.Props {
			gv, ok := got.Props[k]
			if !ok {
				t.Errorf("record %d prop %q missing", i, k)
				continue
			}
			if gv.String() != wv.String() {
				t.Errorf("record %d prop %q: got %s, want %s", i, k, gv, wv)
			}
		}
		if want.Value != nil {
			if got.Value == nil || got.Value.String() != want.Value.String() {
				t.Errorf("record %d value: got %v, want %v", i, got.Value, want.Value)
			}
		}
	}
}

func propsLenNonNull(props map[string]value.Value) int {
	n := 0
	for _, v := range props {
		if !value.IsNull(v) {
			n++
		}
	}
	return n
}

func TestValueCodecRejectsEntities(t *testing.T) {
	g := graph.New()
	n := g.CreateNode([]string{"X"}, nil)
	var e encoder
	if err := e.encodeValue(value.NewNode(n)); err == nil {
		t.Fatal("encoding a node value should fail")
	}
}

// writeEntries appends framed batches to a fresh WAL file and returns it.
func writeEntries(t *testing.T, path string, batches ...[]graph.Mutation) {
	t.Helper()
	w, err := createWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		payload, err := encodeBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		off, err := w.append(payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.syncTo(off); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000.log")
	b1 := []graph.Mutation{{Kind: graph.MutCreateNode, ID: 1, Labels: []string{"A"}}}
	b2 := allKindsBatch()
	writeEntries(t, path, b1, b2)

	var got [][]graph.Mutation
	end, torn, records, err := replayWAL(path, func(e walEntry) error {
		got = append(got, e.Mutations)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if torn {
		t.Error("unexpected torn tail")
	}
	if records != len(b1)+len(b2) {
		t.Errorf("replayed %d records, want %d", records, len(b1)+len(b2))
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d batches, want 2", len(got))
	}
	fi, _ := os.Stat(path)
	if end != fi.Size() {
		t.Errorf("valid end %d != file size %d", end, fi.Size())
	}
}

func TestWALTornTailDetectedAndTruncated(t *testing.T) {
	// Every mangler takes (intact first entry bytes, complete second entry
	// bytes) and returns a file whose first entry must survive recovery and
	// whose tail must be diagnosed as torn.
	for name, mangle := range map[string]func(first, second []byte) []byte{
		"torn header": func(first, _ []byte) []byte { return append(first, 0x01, 0x02, 0x03) },
		"torn payload": func(first, second []byte) []byte {
			return append(first, second[:len(second)-1]...) // header + payload minus a byte
		},
		"corrupt entry": func(first, second []byte) []byte {
			second[len(second)-1] ^= 0xFF // bit-rot in the final entry
			return append(first, second...)
		},
		"garbage length": func(first, _ []byte) []byte {
			return append(first, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "wal-000000.log")
			good := []graph.Mutation{{Kind: graph.MutCreateNode, ID: 1, Labels: []string{"A"}}}
			bad := []graph.Mutation{{Kind: graph.MutCreateNode, ID: 2, Labels: []string{"B"}}}
			writeEntries(t, path, good, bad)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Learn the first-entry boundary by writing a single-entry file
			// of the same first batch and taking its size.
			single := filepath.Join(dir, "wal-000001.log")
			writeEntries(t, single, good)
			fi, _ := os.Stat(single)
			cut := fi.Size()
			first := append([]byte(nil), raw[:cut]...)
			second := append([]byte(nil), raw[cut:]...)
			if err := os.WriteFile(path, mangle(first, second), 0o644); err != nil {
				t.Fatal(err)
			}

			validEnd, torn, records, err := replayWAL(path, nil)
			if err != nil {
				t.Fatalf("replay after mangle: %v", err)
			}
			if !torn {
				t.Fatal("expected a torn tail")
			}
			if records != 1 {
				t.Errorf("replayed %d records, want 1 (the intact entry)", records)
			}
			if validEnd != cut {
				t.Errorf("valid end %d, want %d", validEnd, cut)
			}

			// openWALForAppend must truncate the garbage and leave an
			// appendable log.
			w, err := openWALForAppend(path, validEnd)
			if err != nil {
				t.Fatal(err)
			}
			payload, _ := encodeBatch([]graph.Mutation{{Kind: graph.MutCreateNode, ID: 3}})
			off, err := w.append(payload)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.syncTo(off); err != nil {
				t.Fatal(err)
			}
			if err := w.close(); err != nil {
				t.Fatal(err)
			}
			_, torn2, records2, err := replayWAL(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			if torn2 || records2 != 2 {
				t.Errorf("after truncate+append: torn=%v records=%d, want clean 2", torn2, records2)
			}
		})
	}
}

func TestWALCorruptFirstEntryLosesEverythingAfterIt(t *testing.T) {
	// A corrupt entry in the middle stops replay there: later entries are
	// unreachable (by design — order is the contract).
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-000000.log")
	b := []graph.Mutation{{Kind: graph.MutCreateNode, ID: 1}}
	writeEntries(t, path, b, b, b)
	raw, _ := os.ReadFile(path)
	// Flip a byte inside the first entry's payload (after magic + header).
	raw[len(walMagic)+entryHeaderSize] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	validEnd, torn, records, err := replayWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !torn || records != 0 || validEnd != int64(len(walMagic)) {
		t.Errorf("got torn=%v records=%d validEnd=%d, want torn, 0 records, end at header", torn, records, validEnd)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := graph.New()
	g.CreateIndex("A", "k")
	n1 := g.CreateNode([]string{"A"}, map[string]value.Value{"k": value.NewInt(1)})
	n2 := g.CreateNode([]string{"B"}, map[string]value.Value{"s": value.NewString("x")})
	if _, err := g.CreateRelationship(n1, n2, "R", map[string]value.Value{"w": value.NewFloat(0.5)}); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	img := buildSnapshotImage(g, 7)
	if _, err := writeSnapshot(dir, img); err != nil {
		t.Fatal(err)
	}
	loaded, err := readSnapshot(filepath.Join(dir, snapshotName(7)))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Gen != 7 || loaded.NextNode != 2 || loaded.NextRel != 1 {
		t.Errorf("header: %+v", loaded)
	}
	g2 := graph.New()
	for _, m := range loaded.Mutations {
		if err := g2.Apply(m); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	if got, want := g2.DebugDump(), g.DebugDump(); got != want {
		t.Errorf("snapshot round trip mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	g := graph.New()
	g.CreateNode([]string{"A"}, map[string]value.Value{"k": value.NewInt(1)})
	dir := t.TempDir()
	if _, err := writeSnapshot(dir, buildSnapshotImage(g, 1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName(1))
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshot(path); err == nil {
		t.Fatal("corrupt snapshot must not load")
	}
}

// TestCommitFailStopOnEncodeError: if a record ever fails to encode (an
// encoder bug — the executor rejects non-storable values first), the store
// must go fail-stop rather than let later commits journal records that
// reference entities missing from the log.
func TestCommitFailStopOnEncodeError(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	st, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g.SetMutationHook(st.Record)

	node := g.CreateNode([]string{"A"}, nil) // journaled fine
	// Force an encode failure by injecting an unencodable property value.
	st.Record(graph.Mutation{Kind: graph.MutSetNodeProp, ID: node.ID(), Key: "bad", Value: value.NewNode(node)})
	if err := st.Commit(); err == nil {
		t.Fatal("commit of an unencodable record must fail")
	}
	// Fail-stop: subsequent commits are refused...
	g.CreateNode([]string{"B"}, nil)
	if err := st.Commit(); err == nil {
		t.Fatal("commit after a dropped batch must be refused (fail-stop)")
	}
	// ...until a checkpoint recaptures the in-memory state and repairs it.
	if err := st.Checkpoint(g); err != nil {
		t.Fatalf("checkpoint repair: %v", err)
	}
	g.CreateNode([]string{"C"}, nil)
	if err := st.Commit(); err != nil {
		t.Fatalf("commit after checkpoint repair: %v", err)
	}
	if err := st.Close(); err != nil { // release the directory lock
		t.Fatal(err)
	}

	g2 := graph.New()
	st2, err := Open(dir, g2, Options{})
	if err != nil {
		t.Fatalf("recovery after fail-stop + repair: %v", err)
	}
	defer st2.Close()
	if got, want := g2.DebugDump(), g.DebugDump(); got != want {
		t.Errorf("recovered state mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotMultiChunk forces the chunked snapshot writer to emit many
// frames and checks the image survives the round trip — this is the path
// that keeps checkpoints working for graphs whose serialized state exceeds
// any single frame's size limit.
func TestSnapshotMultiChunk(t *testing.T) {
	old := snapshotChunkTarget
	snapshotChunkTarget = 64 // bytes: force a frame every record or two
	defer func() { snapshotChunkTarget = old }()

	g := graph.New()
	g.CreateIndex("P", "k")
	var prev *graph.Node
	for i := 0; i < 100; i++ {
		n := g.CreateNode([]string{"P"}, map[string]value.Value{
			"k":    value.NewInt(int64(i)),
			"name": value.NewString("node with a reasonably long property value"),
		})
		if prev != nil {
			if _, err := g.CreateRelationship(prev, n, "NEXT", nil); err != nil {
				t.Fatal(err)
			}
		}
		prev = n
	}

	dir := t.TempDir()
	if _, err := writeSnapshot(dir, buildSnapshotImage(g, 3)); err != nil {
		t.Fatal(err)
	}
	img, err := readSnapshot(filepath.Join(dir, snapshotName(3)))
	if err != nil {
		t.Fatal(err)
	}
	g2 := graph.New()
	for _, m := range img.Mutations {
		if err := g2.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	g2.SetIDCounters(img.NextNode, img.NextRel)
	if got, want := g2.DebugDump(), g.DebugDump(); got != want {
		t.Errorf("multi-chunk snapshot round trip mismatch")
	}
	// A truncated multi-chunk snapshot must refuse to half-load.
	path := filepath.Join(dir, snapshotName(3))
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshot(path); err == nil {
		t.Fatal("truncated snapshot must not load")
	}
}
