package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/graph"
)

var (
	walMagic  = []byte("CYWAL001")
	snapMagic = []byte("CYSNAP01")
	crcTable  = crc32.MakeTable(crc32.Castagnoli)
)

const (
	// entryHeaderSize is [length u32][crc32c u32].
	entryHeaderSize = 8
	// maxEntrySize bounds a single committed batch; a length field beyond it
	// is treated as a torn/garbage tail rather than an allocation request.
	maxEntrySize = 1 << 30
)

// walFile is an append-only log of committed mutation batches. Appends are
// serialized by a mutex; fsyncs use leader-based group commit so several
// committers queued behind one another are covered by a single Sync call.
type walFile struct {
	path string

	mu     sync.Mutex // guards f, size and broken during appends and rotation
	f      *os.File
	size   int64 // bytes written (logical end of file)
	broken bool  // a partial append left undefined bytes at the end

	syncMu sync.Mutex // serializes fsyncs; also guards synced
	synced int64      // bytes known durable
}

// createWAL creates a fresh WAL file with the magic header.
func createWAL(path string) (*walFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create wal: %w", err)
	}
	if _, err := f.Write(walMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: write wal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: sync wal header: %w", err)
	}
	size := int64(len(walMagic))
	return &walFile{path: path, f: f, size: size, synced: size}, nil
}

// openWALForAppend opens an existing WAL positioned after its last valid
// entry (validEnd, as reported by replayWAL); any torn tail beyond it is
// truncated away first.
func openWALForAppend(path string, validEnd int64) (*walFile, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncate torn wal tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seek wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: sync truncated wal: %w", err)
	}
	return &walFile{path: path, f: f, size: validEnd, synced: validEnd}, nil
}

// append writes one framed entry and returns the logical end offset the
// caller must sync to for the entry to be durable. Oversized payloads are
// rejected HERE, at write time: acknowledging an entry that replay would
// misdiagnose as a torn tail (and truncate) would be silent data loss.
func (w *walFile) append(payload []byte) (int64, error) {
	if len(payload) > maxEntrySize {
		return 0, fmt.Errorf("storage: batch of %d bytes exceeds the %d-byte WAL entry limit (split the write into smaller queries)", len(payload), maxEntrySize)
	}
	var hdr [entryHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("storage: wal is closed")
	}
	if w.broken {
		return 0, fmt.Errorf("storage: wal has a partially-written entry at its end")
	}
	if _, err := w.f.Write(hdr[:]); err != nil {
		// The header may be partially on disk; appending after it would bury
		// committed entries behind what recovery diagnoses as a torn tail.
		w.broken = true
		return 0, fmt.Errorf("storage: append wal entry: %w", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		w.broken = true
		return 0, fmt.Errorf("storage: append wal entry: %w", err)
	}
	w.size += int64(entryHeaderSize + len(payload))
	return w.size, nil
}

// syncTo makes the log durable at least up to offset off. Group commit:
// whoever gets the sync lock first syncs the whole file; waiters that queued
// behind it usually find their offset already covered and return without
// issuing another fsync. Returns whether this call issued the fsync itself.
func (w *walFile) syncTo(off int64) (bool, error) {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced >= off {
		return false, nil
	}
	w.mu.Lock()
	target := w.size
	f := w.f
	w.mu.Unlock()
	if f == nil {
		return false, fmt.Errorf("storage: wal is closed")
	}
	if err := f.Sync(); err != nil {
		return false, fmt.Errorf("storage: wal fsync: %w", err)
	}
	w.synced = target
	return true, nil
}

// end returns the current logical end offset.
func (w *walFile) end() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// close syncs and closes the file. Lock order (syncMu then mu) matches
// syncTo, and synced is advanced on success so a committer whose fsync was
// overtaken by rotation (Checkpoint closed this generation after its batch
// was appended) sees its offset covered instead of a closed-file error.
func (w *walFile) close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if err == nil {
		w.synced = w.size
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// walEntry is one decoded WAL frame, as seen by replay and the dump tool.
type walEntry struct {
	Offset    int64
	Length    int
	Mutations []graph.Mutation
}

// replayWAL reads entries from a WAL file until EOF or the first torn/corrupt
// frame, invoking apply for each decoded batch. It returns the offset just
// past the last valid entry (the append position), whether a torn tail was
// cut short, and the total number of mutation records seen.
func replayWAL(path string, apply func(walEntry) error) (validEnd int64, torn bool, records int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, 0, fmt.Errorf("storage: open wal for replay: %w", err)
	}
	defer f.Close()

	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return 0, false, 0, fmt.Errorf("storage: wal too short for header: %w", err)
	}
	if string(magic) != string(walMagic) {
		return 0, false, 0, fmt.Errorf("%w: bad wal magic %q", ErrCorrupt, magic)
	}
	off := int64(len(walMagic))
	for {
		var hdr [entryHeaderSize]byte
		n, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return off, false, records, nil // clean end
		}
		if err == io.ErrUnexpectedEOF {
			return off, n > 0, records, nil // torn header
		}
		if err != nil {
			return 0, false, records, fmt.Errorf("storage: read wal entry header: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxEntrySize {
			return off, true, records, nil // garbage length: treat as torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, true, records, nil // torn payload
			}
			return 0, false, records, fmt.Errorf("storage: read wal entry payload: %w", err)
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return off, true, records, nil // torn or bit-rotted entry
		}
		muts, err := decodeBatch(payload)
		if err != nil {
			// The checksum matched but the payload does not decode: this is
			// not a torn write, it is a real corruption (or version skew).
			return 0, false, records, fmt.Errorf("storage: wal entry at offset %d: %w", off, err)
		}
		entry := walEntry{Offset: off, Length: len(payload), Mutations: muts}
		if apply != nil {
			if err := apply(entry); err != nil {
				return 0, false, records, err
			}
		}
		records += len(muts)
		off += int64(entryHeaderSize) + int64(length)
	}
}

// encodeBatch frames a slice of mutations as one WAL entry payload.
func encodeBatch(muts []graph.Mutation) ([]byte, error) {
	var e encoder
	e.u32(uint32(len(muts)))
	for _, m := range muts {
		if err := e.encodeMutation(m); err != nil {
			return nil, err
		}
	}
	return e.buf, nil
}

func decodeBatch(payload []byte) ([]graph.Mutation, error) {
	d := decoder{buf: payload}
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	muts := make([]graph.Mutation, 0, n)
	for i := uint32(0); i < n; i++ {
		m, err := d.decodeMutation()
		if err != nil {
			return nil, err
		}
		muts = append(muts, m)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in wal entry", ErrCorrupt, d.remaining())
	}
	return muts, nil
}
