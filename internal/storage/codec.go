// Package storage makes a property graph durable: an append-only,
// checksummed write-ahead log (WAL) of the logical mutation records emitted
// by internal/graph, plus point-in-time snapshots of the whole store.
// Recovery loads the most recent valid snapshot and replays the WAL tail on
// top of it; a torn final WAL entry (the result of crashing mid-write) is
// detected by its checksum and truncated away rather than poisoning
// recovery. After a successful snapshot the old log generation is deleted,
// bounding disk use.
//
// Layout of a data directory (one generation N live at a time):
//
//	snapshot-N.snap   full store image, written by Checkpoint
//	wal-N.log         mutations committed since snapshot N
//
// Both file kinds start with an 8-byte magic. Every WAL entry is one
// committed batch (all mutations of one write query), framed as
// [length u32][crc32c u32][payload], so a batch is applied all-or-nothing:
// replay stops at the first frame whose checksum fails. The snapshot body
// uses the same framing, as a header frame followed by record chunks
// (see snapshot.go), so the image size is unbounded; a snapshot loads only
// if every frame checks out and the record count matches its header.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/temporal"
	"repro/internal/value"
)

// ErrCorrupt is returned when a WAL or snapshot payload fails to decode even
// though its checksum matched — i.e. the file was written by an incompatible
// or buggy encoder, not torn by a crash.
var ErrCorrupt = errors.New("storage: corrupt record")

// Value type tags used on disk. The tag space is append-only: never renumber.
const (
	tagNull     = 0
	tagFalse    = 1
	tagTrue     = 2
	tagInt      = 3
	tagFloat    = 4
	tagString   = 5
	tagList     = 6
	tagMap      = 7
	tagDate     = 8
	tagDateTime = 9
	tagDuration = 10
)

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) u8() (uint8, error) {
	if d.remaining() < 1 {
		return 0, ErrCorrupt
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, ErrCorrupt
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, ErrCorrupt
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) i64() (int64, error) {
	v, err := d.u64()
	return int64(v), err
}

func (d *decoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if d.remaining() < int(n) {
		return "", ErrCorrupt
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// encodeValue appends the on-disk form of a Cypher property value. Property
// values are scalars, temporals, lists and maps — graph entities can never
// be stored as properties, so the codec rejects them.
func (e *encoder) encodeValue(v value.Value) error {
	switch t := v.(type) {
	case nil:
		e.u8(tagNull)
	case value.Bool:
		if bool(t) {
			e.u8(tagTrue)
		} else {
			e.u8(tagFalse)
		}
	case value.Int:
		e.u8(tagInt)
		e.i64(int64(t))
	case value.Float:
		e.u8(tagFloat)
		e.u64(math.Float64bits(float64(t)))
	case value.String:
		e.u8(tagString)
		e.str(string(t))
	case value.List:
		e.u8(tagList)
		e.u32(uint32(t.Len()))
		for _, el := range t.Elements() {
			if err := e.encodeValue(el); err != nil {
				return err
			}
		}
	case value.Map:
		e.u8(tagMap)
		keys := t.Keys()
		e.u32(uint32(len(keys)))
		for _, k := range keys {
			e.str(k)
			mv, _ := t.Get(k)
			if err := e.encodeValue(mv); err != nil {
				return err
			}
		}
	case temporal.Date:
		e.u8(tagDate)
		e.i64(int64(t.Year))
		e.u8(uint8(t.Month))
		e.u8(uint8(t.Day))
	case temporal.DateTime:
		e.u8(tagDateTime)
		e.i64(int64(t.Year))
		e.u8(uint8(t.Month))
		e.u8(uint8(t.Day))
		e.u8(uint8(t.Hour))
		e.u8(uint8(t.Minute))
		e.u8(uint8(t.Second))
		e.u32(uint32(t.Nanosecond))
	case temporal.Duration:
		e.u8(tagDuration)
		e.i64(int64(t.Months))
		e.i64(int64(t.Days))
		e.i64(t.Seconds)
		e.i64(t.Nanos)
	default:
		if value.IsNull(v) {
			e.u8(tagNull)
			return nil
		}
		return fmt.Errorf("storage: cannot persist %s property values", v.Kind())
	}
	return nil
}

func (d *decoder) decodeValue() (value.Value, error) {
	tag, err := d.u8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNull:
		return value.Null(), nil
	case tagFalse:
		return value.NewBool(false), nil
	case tagTrue:
		return value.NewBool(true), nil
	case tagInt:
		v, err := d.i64()
		return value.NewInt(v), err
	case tagFloat:
		v, err := d.u64()
		return value.NewFloat(math.Float64frombits(v)), err
	case tagString:
		s, err := d.str()
		return value.NewString(s), err
	case tagList:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		elems := make([]value.Value, 0, n)
		for i := uint32(0); i < n; i++ {
			el, err := d.decodeValue()
			if err != nil {
				return nil, err
			}
			elems = append(elems, el)
		}
		return value.NewListOf(elems), nil
	case tagMap:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		entries := make(map[string]value.Value, n)
		for i := uint32(0); i < n; i++ {
			k, err := d.str()
			if err != nil {
				return nil, err
			}
			mv, err := d.decodeValue()
			if err != nil {
				return nil, err
			}
			entries[k] = mv
		}
		return value.NewMap(entries), nil
	case tagDate:
		year, err := d.i64()
		if err != nil {
			return nil, err
		}
		month, err := d.u8()
		if err != nil {
			return nil, err
		}
		day, err := d.u8()
		if err != nil {
			return nil, err
		}
		return temporal.Date{Year: int(year), Month: time.Month(month), Day: int(day)}, nil
	case tagDateTime:
		year, err := d.i64()
		if err != nil {
			return nil, err
		}
		var parts [5]uint8
		for i := range parts {
			if parts[i], err = d.u8(); err != nil {
				return nil, err
			}
		}
		nanos, err := d.u32()
		if err != nil {
			return nil, err
		}
		return temporal.DateTime{
			Date:       temporal.Date{Year: int(year), Month: time.Month(parts[0]), Day: int(parts[1])},
			Hour:       int(parts[2]),
			Minute:     int(parts[3]),
			Second:     int(parts[4]),
			Nanosecond: int(nanos),
		}, nil
	case tagDuration:
		months, err := d.i64()
		if err != nil {
			return nil, err
		}
		days, err := d.i64()
		if err != nil {
			return nil, err
		}
		secs, err := d.i64()
		if err != nil {
			return nil, err
		}
		nanos, err := d.i64()
		if err != nil {
			return nil, err
		}
		return temporal.Duration{Months: int(months), Days: int(days), Seconds: secs, Nanos: nanos}, nil
	default:
		return nil, fmt.Errorf("%w: unknown value tag %d", ErrCorrupt, tag)
	}
}

func (e *encoder) encodeProps(props map[string]value.Value) error {
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u32(uint32(len(keys)))
	for _, k := range keys {
		e.str(k)
		if err := e.encodeValue(props[k]); err != nil {
			return err
		}
	}
	return nil
}

func (d *decoder) decodeProps() (map[string]value.Value, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	props := make(map[string]value.Value, n)
	for i := uint32(0); i < n; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.decodeValue()
		if err != nil {
			return nil, err
		}
		props[k] = v
	}
	return props, nil
}

// encodeMutation appends the on-disk form of one logical mutation record.
func (e *encoder) encodeMutation(m graph.Mutation) error {
	e.u8(uint8(m.Kind))
	switch m.Kind {
	case graph.MutCreateNode:
		e.i64(m.ID)
		e.u32(uint32(len(m.Labels)))
		for _, l := range m.Labels {
			e.str(l)
		}
		return e.encodeProps(m.Props)
	case graph.MutDeleteNode, graph.MutDeleteRel:
		e.i64(m.ID)
	case graph.MutCreateRel:
		e.i64(m.ID)
		e.i64(m.Start)
		e.i64(m.End)
		e.str(m.Label)
		return e.encodeProps(m.Props)
	case graph.MutSetNodeProp, graph.MutSetRelProp:
		e.i64(m.ID)
		e.str(m.Key)
		return e.encodeValue(m.Value)
	case graph.MutReplaceNodeProps, graph.MutReplaceRelProps:
		e.i64(m.ID)
		return e.encodeProps(m.Props)
	case graph.MutAddLabel, graph.MutRemoveLabel:
		e.i64(m.ID)
		e.str(m.Label)
	case graph.MutCreateIndex, graph.MutDropIndex:
		e.str(m.Label)
		e.str(m.Key)
	default:
		return fmt.Errorf("storage: cannot encode mutation kind %s", m.Kind)
	}
	return nil
}

func (d *decoder) decodeMutation() (graph.Mutation, error) {
	kind, err := d.u8()
	if err != nil {
		return graph.Mutation{}, err
	}
	m := graph.Mutation{Kind: graph.MutationKind(kind)}
	switch m.Kind {
	case graph.MutCreateNode:
		if m.ID, err = d.i64(); err != nil {
			return m, err
		}
		n, err := d.u32()
		if err != nil {
			return m, err
		}
		m.Labels = make([]string, 0, n)
		for i := uint32(0); i < n; i++ {
			l, err := d.str()
			if err != nil {
				return m, err
			}
			m.Labels = append(m.Labels, l)
		}
		m.Props, err = d.decodeProps()
		return m, err
	case graph.MutDeleteNode, graph.MutDeleteRel:
		m.ID, err = d.i64()
		return m, err
	case graph.MutCreateRel:
		if m.ID, err = d.i64(); err != nil {
			return m, err
		}
		if m.Start, err = d.i64(); err != nil {
			return m, err
		}
		if m.End, err = d.i64(); err != nil {
			return m, err
		}
		if m.Label, err = d.str(); err != nil {
			return m, err
		}
		m.Props, err = d.decodeProps()
		return m, err
	case graph.MutSetNodeProp, graph.MutSetRelProp:
		if m.ID, err = d.i64(); err != nil {
			return m, err
		}
		if m.Key, err = d.str(); err != nil {
			return m, err
		}
		m.Value, err = d.decodeValue()
		return m, err
	case graph.MutReplaceNodeProps, graph.MutReplaceRelProps:
		if m.ID, err = d.i64(); err != nil {
			return m, err
		}
		m.Props, err = d.decodeProps()
		return m, err
	case graph.MutAddLabel, graph.MutRemoveLabel:
		if m.ID, err = d.i64(); err != nil {
			return m, err
		}
		m.Label, err = d.str()
		return m, err
	case graph.MutCreateIndex, graph.MutDropIndex:
		if m.Label, err = d.str(); err != nil {
			return m, err
		}
		m.Key, err = d.str()
		return m, err
	default:
		return m, fmt.Errorf("%w: unknown mutation kind %d", ErrCorrupt, kind)
	}
}
