package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

// Replication support: a leader's WAL is a replication stream. Followers
// track a Position — (generation, byte offset) into the leader's log — and
// the leader reads committed entries back out of its own append-only WAL
// file to ship them. Because a follower journals the exact frames it
// receives, its wal-N.log is a byte-identical prefix of the leader's, which
// is what makes the offset arithmetic trivial: the follower's durable
// position IS the leader position it must resume from after a crash.

// Position locates a point in the replication stream: just past the end of
// entry Seq at byte Offset of WAL generation Gen. Offsets include the
// 8-byte file magic, so the start of a generation is Offset==WALStartOffset,
// never 0.
type Position struct {
	// Gen is the snapshot/WAL generation (bumped by leader checkpoints).
	Gen uint64 `json:"gen"`
	// Offset is the byte offset just past the last entry in wal-Gen.
	Offset int64 `json:"offset"`
	// Seq is the number of entries in wal-Gen up to Offset. Followers can
	// derive it locally (their WAL is a byte-identical prefix), so it is
	// informational: lag-in-entries is leader.Seq - follower.Seq.
	Seq uint64 `json:"seq"`
}

// WALStartOffset is the offset of the first entry in any WAL generation
// (just past the file magic).
const WALStartOffset = int64(8)

func (p Position) String() string {
	return fmt.Sprintf("gen %d @%d (entry %d)", p.Gen, p.Offset, p.Seq)
}

// Before reports whether p is strictly earlier in the stream than q.
func (p Position) Before(q Position) bool {
	if p.Gen != q.Gen {
		return p.Gen < q.Gen
	}
	return p.Offset < q.Offset
}

// Replication errors. The leader's stream endpoint maps them to HTTP
// statuses; the follower maps those back and reacts (snapshot catch-up,
// fatal stop).
var (
	// ErrPositionTruncated: the requested generation is older than the live
	// one — the leader checkpointed past it and deleted its WAL. The
	// follower must catch up from a snapshot.
	ErrPositionTruncated = errors.New("storage: position predates the live WAL generation (truncated by checkpoint)")
	// ErrFollowerAhead: the requested position is beyond the leader's log —
	// the follower has entries the leader does not (e.g. the leader was
	// restored from an older backup, or the follower tailed a different
	// leader). There is no safe automatic recovery; the operator must wipe
	// the follower's data directory.
	ErrFollowerAhead = errors.New("storage: follower position is ahead of the leader's log")
	// ErrNoSnapshot: the live generation has no snapshot file (generation 0
	// before the first checkpoint). Callers needing catch-up data must
	// stream the WAL from the start instead.
	ErrNoSnapshot = errors.New("storage: live generation has no snapshot")
)

// StreamFrame is one committed WAL entry read back for replication: the
// payload of the on-disk frame (still one whole write-query batch) plus the
// offset it starts at. The checksum has been re-verified on read.
type StreamFrame struct {
	// Offset is the byte offset of the frame's header in its WAL file; the
	// entry occupies [Offset, Offset+8+len(Payload)).
	Offset int64
	// Payload is the batch payload exactly as framed on disk.
	Payload []byte
}

// End returns the offset just past this frame.
func (f StreamFrame) End() int64 { return f.Offset + entryHeaderSize + int64(len(f.Payload)) }

// DecodeBatch decodes a WAL entry payload (as shipped in a StreamFrame) into
// its mutation records. Exported for the replication layer, which applies
// shipped batches through graph.Apply.
func DecodeBatch(payload []byte) ([]graph.Mutation, error) { return decodeBatch(payload) }

// EncodeBatch frames a slice of mutations as one WAL entry payload — the
// inverse of DecodeBatch. Exported for tests and benchmarks that synthesize
// replication streams.
func EncodeBatch(muts []graph.Mutation) ([]byte, error) { return encodeBatch(muts) }

// Position returns the store's current stream position: the live generation,
// the logical end of its WAL, and the number of entries the WAL holds.
func (s *Store) Position() Position {
	// Read gen before the WAL handle: Checkpoint stores the new WAL first,
	// a torn read here at worst pairs the old gen with the old WAL's end
	// (consistent) or re-reads. Taking walMu makes it exact.
	s.walMu.Lock()
	defer s.walMu.Unlock()
	var end int64
	if w := s.wal.Load(); w != nil {
		end = w.end()
	}
	return Position{Gen: s.gen.Load(), Offset: end, Seq: s.walSeq.Load()}
}

// CommitSignal returns a channel that is closed the next time the stream
// position advances (an entry is appended, a checkpoint rotates the
// generation, or the store closes). Callers re-fetch the channel after each
// wake-up. Fetch the signal BEFORE checking for new entries, or a commit
// landing between the check and the wait is missed until the next one.
func (s *Store) CommitSignal() <-chan struct{} {
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	if s.notify == nil {
		s.notify = make(chan struct{})
	}
	return s.notify
}

// notifyCommit wakes every CommitSignal waiter.
func (s *Store) notifyCommit() {
	s.notifyMu.Lock()
	if s.notify != nil {
		close(s.notify)
	}
	s.notify = make(chan struct{})
	s.notifyMu.Unlock()
}

// ReadEntries reads committed WAL entries for replication, starting at pos
// and stopping after roughly maxBytes of payload (at least one entry is
// returned when any is available). It returns the frames and the position
// just past the last one. An empty result with a nil error means the
// follower is caught up.
//
// Reading races appends by design: the file is append-only and walFile.size
// is only advanced after an entry's bytes are fully written, so ReadEntries
// never sees a half-written frame — it simply stops at the logical end
// captured when it started.
func (s *Store) ReadEntries(pos Position, maxBytes int) ([]StreamFrame, Position, error) {
	if s.closed.Load() {
		return nil, pos, fmt.Errorf("storage: read entries on closed store")
	}
	liveGen := s.gen.Load()
	switch {
	case pos.Gen < liveGen:
		return nil, pos, ErrPositionTruncated
	case pos.Gen > liveGen:
		return nil, pos, fmt.Errorf("%w: follower at generation %d, leader at %d", ErrFollowerAhead, pos.Gen, liveGen)
	}
	w := s.wal.Load()
	if w == nil {
		return nil, pos, fmt.Errorf("storage: no live wal")
	}
	end := w.end()
	if pos.Offset < WALStartOffset {
		return nil, pos, fmt.Errorf("storage: stream offset %d is inside the WAL header", pos.Offset)
	}
	if pos.Offset > end {
		return nil, pos, fmt.Errorf("%w: offset %d beyond log end %d", ErrFollowerAhead, pos.Offset, end)
	}
	if pos.Offset == end {
		return nil, pos, nil
	}
	// A checkpoint may rotate (and delete) the file between the gen check
	// and the open; a vanished file is the same condition as a stale gen.
	f, err := os.Open(w.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, pos, ErrPositionTruncated
		}
		return nil, pos, fmt.Errorf("storage: open wal for streaming: %w", err)
	}
	defer f.Close()
	frames, next, err := readFramesBetween(f, pos, end, maxBytes)
	if err != nil {
		return nil, pos, err
	}
	return frames, next, nil
}

// readFramesBetween reads whole frames from off to at most end, stopping
// after maxBytes. The range [pos.Offset, end) is guaranteed by the caller to
// hold only complete, committed entries.
func readFramesBetween(f io.ReaderAt, pos Position, end int64, maxBytes int) ([]StreamFrame, Position, error) {
	var frames []StreamFrame
	next := pos
	read := 0
	for next.Offset < end && (read == 0 || read < maxBytes) {
		var hdr [entryHeaderSize]byte
		if _, err := f.ReadAt(hdr[:], next.Offset); err != nil {
			return nil, pos, fmt.Errorf("storage: read stream entry header at %d: %w", next.Offset, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxEntrySize || next.Offset+entryHeaderSize+int64(length) > end {
			// Cannot happen for a committed entry; the file under us is not
			// the log we think it is.
			return nil, pos, fmt.Errorf("storage: stream entry at %d overruns committed end %d", next.Offset, end)
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, next.Offset+entryHeaderSize); err != nil {
			return nil, pos, fmt.Errorf("storage: read stream entry payload at %d: %w", next.Offset, err)
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return nil, pos, fmt.Errorf("%w: stream entry at offset %d fails checksum", ErrCorrupt, next.Offset)
		}
		frames = append(frames, StreamFrame{Offset: next.Offset, Payload: payload})
		next.Offset += entryHeaderSize + int64(length)
		next.Seq++
		read += entryHeaderSize + int(length)
	}
	return frames, next, nil
}

// LiveSnapshot opens the snapshot file of the live generation for shipping
// to a catching-up follower, returning the generation it belongs to and the
// file size. Generation 0 has no snapshot (nothing has been checkpointed);
// that returns ErrNoSnapshot, and the follower streams wal-0 from the start
// instead. The caller must Close the reader.
func (s *Store) LiveSnapshot() (gen uint64, rc io.ReadCloser, size int64, err error) {
	// Hold walMu so a concurrent checkpoint cannot delete the file between
	// the gen read and the open; once the file is open, deletion is harmless
	// (the fd keeps the bytes).
	s.walMu.Lock()
	defer s.walMu.Unlock()
	gen = s.gen.Load()
	f, err := os.Open(filepath.Join(s.dir, snapshotName(gen)))
	if err != nil {
		if os.IsNotExist(err) {
			return gen, nil, 0, ErrNoSnapshot
		}
		return gen, nil, 0, fmt.Errorf("storage: open live snapshot: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return gen, nil, 0, fmt.Errorf("storage: stat live snapshot: %w", err)
	}
	return gen, f, fi.Size(), nil
}
