package storage

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// mustEncode wraps EncodeBatch for single-mutation test payloads.
func mustEncode(t *testing.T, muts ...graph.Mutation) []byte {
	t.Helper()
	payload, err := EncodeBatch(muts)
	if err != nil {
		t.Fatalf("encode batch: %v", err)
	}
	return payload
}

func TestTermRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// A directory with no term file is term 0 with no vote, not an error.
	rec, err := LoadTermRecord(dir)
	if err != nil {
		t.Fatalf("load missing term record: %v", err)
	}
	if rec.Term != 0 || rec.VotedFor != "" {
		t.Fatalf("fresh record = %+v, want zero", rec)
	}

	if err := SaveTermRecord(dir, TermRecord{Term: 7, VotedFor: "http://n2:7474"}); err != nil {
		t.Fatalf("save: %v", err)
	}
	rec, err = LoadTermRecord(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Term != 7 || rec.VotedFor != "http://n2:7474" {
		t.Fatalf("reloaded record = %+v", rec)
	}

	// Overwrite (a newer term clears the vote) survives a reload.
	if err := SaveTermRecord(dir, TermRecord{Term: 9}); err != nil {
		t.Fatal(err)
	}
	rec, err = LoadTermRecord(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Term != 9 || rec.VotedFor != "" {
		t.Fatalf("record after overwrite = %+v, want term 9, no vote", rec)
	}
}

func TestFollowerStoreFencesStaleTerms(t *testing.T) {
	g := graph.New()
	f, err := OpenFollower(t.TempDir(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	payload := mustEncode(t, nodeMut(1, "N"))
	// Entries at or above the fence land; below it they are refused with
	// ErrStaleTerm and nothing is journaled.
	f.SetFenceTerm(5)
	if err := f.AppendEntry(f.Position(), 5, payload); err != nil {
		t.Fatalf("append at fence term: %v", err)
	}
	before := f.Position()
	if err := f.AppendEntry(f.Position(), 4, payload); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("stale append error = %v, want ErrStaleTerm", err)
	}
	if f.Position() != before {
		t.Fatalf("stale append moved the position %v -> %v", before, f.Position())
	}
	if err := f.AppendEntry(f.Position(), 6, payload); err != nil {
		t.Fatalf("append above fence: %v", err)
	}

	// The fence is monotonic: lowering attempts are ignored.
	f.SetFenceTerm(3)
	if got := f.FenceTerm(); got != 5 {
		t.Fatalf("fence lowered to %d, want 5", got)
	}
}

func TestPromoteDemoteHandOff(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	f, err := OpenFollower(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		payload := mustEncode(t, nodeMut(int64(i), "N"))
		if err := f.AppendEntry(f.Position(), 1, payload); err != nil {
			t.Fatal(err)
		}
	}
	followerPos := f.Position()

	// Promotion hands the open WAL to a writer-side store without closing or
	// reopening files: same position, and normal commits work immediately.
	s, err := f.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if s.Position() != followerPos {
		t.Fatalf("promoted position %v, want %v", s.Position(), followerPos)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("closing the husk after promote: %v", err)
	}
	if _, err := f.Promote(); err == nil {
		t.Fatal("second promote succeeded, want error")
	}
	commitBatch(t, s, nodeMut(10, "W"))
	if s.Position().Seq != followerPos.Seq+1 {
		t.Fatalf("commit after promote: position %v", s.Position())
	}

	// Demotion hands the WAL back: the follower store resumes at the exact
	// position and accepts stream appends; the old writer refuses commits.
	writerPos := s.Position()
	f2, err := s.Demote()
	if err != nil {
		t.Fatalf("demote: %v", err)
	}
	if f2.Position() != writerPos {
		t.Fatalf("demoted position %v, want %v", f2.Position(), writerPos)
	}
	s.Record(nodeMut(12, "W"))
	if err := s.Commit(); err == nil {
		t.Fatal("commit on a demoted store succeeded, want failure")
	}
	payload := mustEncode(t, nodeMut(11, "N"))
	if err := f2.AppendEntry(f2.Position(), 2, payload); err != nil {
		t.Fatalf("append after demote: %v", err)
	}

	// The whole shuffle stays recoverable: a fresh follower open over the
	// same directory replays every entry appended across both roles.
	wantSeq := f2.Position().Seq
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	g2 := graph.New()
	f3, err := OpenFollower(dir, g2, Options{})
	if err != nil {
		t.Fatalf("reopen after hand-offs: %v", err)
	}
	defer f3.Close()
	if f3.Position().Seq != wantSeq {
		t.Fatalf("recovered seq %d, want %d", f3.Position().Seq, wantSeq)
	}
}
