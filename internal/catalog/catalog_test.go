package catalog

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/value"
)

func TestCatalogLifecycle(t *testing.T) {
	c := New(core.Options{})
	if _, err := c.Create("social"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("social"); err == nil {
		t.Fatalf("duplicate graph names should be rejected")
	}
	citations, _ := datasets.Citations()
	if err := c.Register("citations", citations); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("citations", citations); err == nil {
		t.Fatalf("duplicate registration should be rejected")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "citations" || names[1] != "social" {
		t.Errorf("Names = %v", names)
	}
	if _, ok := c.Graph("citations"); !ok {
		t.Errorf("Graph(citations) should exist")
	}
	if err := c.Drop("social"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("social"); err == nil {
		t.Errorf("dropping a missing graph should fail")
	}
	if _, ok := c.Graph("social"); ok {
		t.Errorf("dropped graph should not be reachable")
	}
}

func TestCatalogRunPerGraph(t *testing.T) {
	c := New(core.Options{})
	citations, _ := datasets.Citations()
	teachers, _ := datasets.Teachers()
	if err := c.Register("citations", citations); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("teachers", teachers); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run("citations", "MATCH (r:Researcher) RETURN count(*) AS c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if value.Compare(res.Rows()[0][0], value.NewInt(3)) != 0 {
		t.Errorf("citations researcher count wrong: %v", res.Rows()[0][0])
	}
	res, err = c.Run("teachers", "MATCH (n:Teacher) RETURN count(*) AS c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if value.Compare(res.Rows()[0][0], value.NewInt(3)) != 0 {
		t.Errorf("teachers count wrong: %v", res.Rows()[0][0])
	}
	if _, err := c.Run("missing", "RETURN 1", nil); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("running on a missing graph should fail, got %v", err)
	}
}

// TestCatalogProjection mirrors the Section 6 example: build a new graph from
// the result of a query over another graph, then query the projection.
func TestCatalogProjection(t *testing.T) {
	c := New(core.Options{})
	social, err := c.Create("soc_net")
	if err != nil {
		t.Fatal(err)
	}
	engine := core.NewEngine(social, core.Options{})
	if _, err := engine.Run(`
		CREATE (a:Person {name: 'a'}), (b:Person {name: 'b'}), (m:Person {name: 'm'}),
		       (a)-[:FRIEND {since: 2010}]->(m),
		       (b)-[:FRIEND {since: 2011}]->(m)`, nil); err != nil {
		t.Fatal(err)
	}

	// Project the subgraph of people that share a friend (the paper's
	// friends-of-friends example, as a node/relationship projection).
	projected, err := c.Project("soc_net", "friends",
		"MATCH (a)-[r1:FRIEND]->(m)<-[r2:FRIEND]-(b) WHERE a.name < b.name RETURN a, b, r1, r2, m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if projected.Stats().NodeCount != 3 || projected.Stats().RelationshipCount != 2 {
		t.Fatalf("projection size wrong: %+v", projected.Stats())
	}
	// The projection is a separate named graph that can be queried on its
	// own.
	res, err := c.Run("friends", "MATCH (a)-[:FRIEND]->(m) RETURN count(*) AS c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if value.Compare(res.Rows()[0][0], value.NewInt(2)) != 0 {
		t.Errorf("projected graph query wrong: %v", res.Rows()[0][0])
	}
	// Projecting onto an existing name fails.
	if _, err := c.Project("soc_net", "friends", "MATCH (a) RETURN a", nil); err == nil {
		t.Errorf("projecting onto an existing name should fail")
	}
	// Projecting paths copies their nodes and relationships.
	if _, err := c.Project("soc_net", "paths", "MATCH p = (a)-[:FRIEND]->(m) RETURN p", nil); err != nil {
		t.Fatal(err)
	}
	pg, _ := c.Graph("paths")
	if pg.Stats().RelationshipCount != 2 {
		t.Errorf("path projection should copy relationships: %+v", pg.Stats())
	}
}
