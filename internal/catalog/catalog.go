// Package catalog implements the "multiple named graphs" capability
// previewed for Cypher 10 in Section 6 of the paper: a registry of named
// property graphs, per-graph query execution, and graph projection (building
// a new named graph from the result of a query over another graph — the
// library-level counterpart of the paper's `RETURN GRAPH` example).
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/value"
)

// Catalog is a registry of named graphs, each with its own engine.
type Catalog struct {
	mu      sync.RWMutex
	graphs  map[string]*graph.Graph
	engines map[string]*core.Engine
	opts    core.Options
}

// New creates an empty catalog; opts configures the engines created for
// member graphs.
func New(opts core.Options) *Catalog {
	return &Catalog{
		graphs:  map[string]*graph.Graph{},
		engines: map[string]*core.Engine{},
		opts:    opts,
	}
}

// Create registers a new empty graph under the name and returns it. It fails
// if the name is taken.
func (c *Catalog) Create(name string) (*graph.Graph, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.graphs[name]; exists {
		return nil, fmt.Errorf("catalog: graph %q already exists", name)
	}
	g := graph.NewNamed(name)
	c.graphs[name] = g
	c.engines[name] = core.NewEngine(g, c.opts)
	return g, nil
}

// Register adds an existing graph under the name.
func (c *Catalog) Register(name string, g *graph.Graph) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.graphs[name]; exists {
		return fmt.Errorf("catalog: graph %q already exists", name)
	}
	c.graphs[name] = g
	c.engines[name] = core.NewEngine(g, c.opts)
	return nil
}

// Drop removes the named graph.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.graphs[name]; !exists {
		return fmt.Errorf("catalog: graph %q does not exist", name)
	}
	delete(c.graphs, name)
	delete(c.engines, name)
	return nil
}

// Graph returns the named graph.
func (c *Catalog) Graph(name string) (*graph.Graph, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, ok := c.graphs[name]
	return g, ok
}

// Names lists the registered graph names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.graphs))
	for n := range c.graphs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run executes a query against the named graph (the library-level analogue of
// the paper's `FROM GRAPH name ...`).
func (c *Catalog) Run(name, query string, params map[string]value.Value) (*core.Result, error) {
	c.mu.RLock()
	engine, ok := c.engines[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("catalog: graph %q does not exist", name)
	}
	return engine.Run(query, params)
}

// Project runs a query against the source graph and materialises the nodes,
// relationships and paths appearing in its result columns as a new named
// graph, preserving labels, types and properties. Node identity is preserved
// within the projection (a node appearing in several rows is copied once).
// This is the library counterpart of the Cypher 10 `RETURN GRAPH` example in
// Section 6 of the paper.
func (c *Catalog) Project(sourceName, targetName, query string, params map[string]value.Value) (*graph.Graph, error) {
	res, err := c.Run(sourceName, query, params)
	if err != nil {
		return nil, err
	}
	target, err := c.Create(targetName)
	if err != nil {
		return nil, err
	}
	src, _ := c.Graph(sourceName)

	copied := map[int64]*graph.Node{}
	copyNode := func(n value.Node) *graph.Node {
		if existing, ok := copied[n.ID()]; ok {
			return existing
		}
		props := map[string]value.Value{}
		for _, k := range n.PropertyKeys() {
			props[k] = n.Property(k)
		}
		nn := target.CreateNode(n.Labels(), props)
		copied[n.ID()] = nn
		return nn
	}
	copyRel := func(r value.Relationship) error {
		srcNode, ok1 := src.NodeByID(r.StartNodeID())
		tgtNode, ok2 := src.NodeByID(r.EndNodeID())
		if !ok1 || !ok2 {
			return fmt.Errorf("catalog: relationship %d references unknown nodes", r.ID())
		}
		props := map[string]value.Value{}
		for _, k := range r.PropertyKeys() {
			props[k] = r.Property(k)
		}
		_, err := target.CreateRelationship(copyNode(srcNode), copyNode(tgtNode), r.RelType(), props)
		return err
	}

	var copyValue func(v value.Value) error
	copyValue = func(v value.Value) error {
		switch {
		case value.IsNull(v):
			return nil
		case v.Kind() == value.KindNode:
			n, _ := value.AsNode(v)
			copyNode(n)
			return nil
		case v.Kind() == value.KindRelationship:
			r, _ := value.AsRelationship(v)
			return copyRel(r)
		case v.Kind() == value.KindPath:
			p, _ := value.AsPath(v)
			for _, n := range p.Nodes {
				copyNode(n)
			}
			for _, r := range p.Rels {
				if err := copyRel(r); err != nil {
					return err
				}
			}
			return nil
		case v.Kind() == value.KindList:
			l, _ := value.AsList(v)
			for _, el := range l.Elements() {
				if err := copyValue(el); err != nil {
					return err
				}
			}
			return nil
		default:
			return nil
		}
	}

	for _, row := range res.Rows() {
		for _, v := range row {
			if err := copyValue(v); err != nil {
				return nil, err
			}
		}
	}
	return target, nil
}
