package semantic

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

func check(t *testing.T, src string) error {
	t.Helper()
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Check(q)
}

func TestValidQueries(t *testing.T) {
	good := []string{
		"MATCH (n) RETURN n",
		"MATCH (n:Person)-[r:KNOWS]->(m) WHERE r.since > 2000 RETURN n, m",
		"MATCH (n) WITH n.name AS name WHERE name = 'x' RETURN name",
		"MATCH (n) OPTIONAL MATCH (n)-[:R]->(m) RETURN n, count(m) AS c",
		"UNWIND [1,2,3] AS x RETURN x",
		"MATCH (a) RETURN a.name AS n UNION MATCH (b) RETURN b.name AS n",
		"CREATE (a:Person {name: 'x'})-[:KNOWS]->(b)",
		"MATCH (n) SET n.x = 1 REMOVE n.y",
		"MATCH (n) DETACH DELETE n",
		"MERGE (n:Person {name: 'x'}) ON CREATE SET n.created = true RETURN n",
		"MATCH (n) RETURN * ORDER BY n.name SKIP 1 LIMIT $n",
		"MATCH (n) WHERE (n)-[:KNOWS]->(:Person) RETURN n",
		"MATCH (n) RETURN count(*) + 1 AS c ORDER BY c",
	}
	for _, src := range good {
		if err := check(t, src); err != nil {
			t.Errorf("Check(%q) = %v, want nil", src, err)
		}
	}
}

func TestInvalidQueries(t *testing.T) {
	bad := map[string]string{
		"MATCH (n) RETURN m":                                        "not defined",
		"MATCH (n) WITH n.name AS x RETURN n":                       "not defined",
		"MATCH (n) WHERE count(n) > 0 RETURN n":                     "aggregating",
		"MATCH (n)":                                                 "cannot conclude",
		"MATCH (n) WITH n":                                          "WITH",
		"UNWIND [1,2] AS x":                                         "cannot conclude",
		"MATCH (a)-[r]->(b)-[r]->(c) RETURN a":                      "bound more than once",
		"MATCH (a)-[r]->(b) MATCH (c)-[r]->(d) RETURN a":            "bound more than once",
		"CREATE (a)-[:X]-(b)":                                       "directed",
		"CREATE (a)-[:X|Y]->(b)":                                    "exactly one relationship type",
		"CREATE (a)-[:X*]->(b)":                                     "variable-length",
		"MATCH (n) RETURN n.a AS x, n.b AS x":                       "duplicate column",
		"RETURN *":                                                  "no variables in scope",
		"MATCH (a) RETURN a UNION MATCH (b) RETURN b":               "same columns",
		"MATCH (a) RETURN a UNION MATCH (b) RETURN b, b.x AS y":     "same number of columns",
		"MATCH (n) RETURN n LIMIT n.x":                              "cannot reference variables",
		"MATCH (n) RETURN n SKIP count(*)":                          "cannot",
		"MATCH (n) DELETE m":                                        "not defined",
		"MATCH (n) SET m.x = 1":                                     "not defined",
		"MATCH (n) REMOVE m.x":                                      "not defined",
		"UNWIND count(*) AS x RETURN x":                             "aggregating",
		"MATCH (n {p: count(*)}) RETURN n":                          "aggregating",
		"MATCH (n) RETURN n ORDER BY count(n)":                      "aggregation in ORDER BY",
		"MATCH (n) RETURN 1 AS one UNION MATCH (m) RETURN 2 AS two": "same columns",
	}
	for src, wantSubstr := range bad {
		err := check(t, src)
		if err == nil {
			t.Errorf("Check(%q) should fail", src)
			continue
		}
		if !strings.Contains(err.Error(), wantSubstr) {
			t.Errorf("Check(%q) error %q should mention %q", src, err.Error(), wantSubstr)
		}
		if !strings.HasPrefix(err.Error(), "semantic error:") {
			t.Errorf("error should be labelled as semantic: %v", err)
		}
	}
}

func TestScopeFlowsThroughWith(t *testing.T) {
	// Variables introduced before WITH and projected survive; others do not.
	if err := check(t, "MATCH (a)-[:R]->(b) WITH a, b RETURN a, b"); err != nil {
		t.Errorf("projected variables should stay in scope: %v", err)
	}
	if err := check(t, "MATCH (a)-[:R]->(b) WITH a RETURN b"); err == nil {
		t.Errorf("variables dropped by WITH should be out of scope")
	}
	// WITH ... WHERE sees only the projected columns.
	if err := check(t, "MATCH (a)-[:R]->(b) WITH a WHERE b.x = 1 RETURN a"); err == nil {
		t.Errorf("WITH ... WHERE should not see dropped variables")
	}
	// RETURN * after WITH uses the new scope.
	if err := check(t, "MATCH (a)-[:R]->(b) WITH a.name AS name RETURN *"); err != nil {
		t.Errorf("RETURN * after WITH should work: %v", err)
	}
}

func TestReturnPlacement(t *testing.T) {
	q, err := parser.Parse("MATCH (n) RETURN n")
	if err != nil {
		t.Fatal(err)
	}
	// Manually build a query with RETURN in the middle to exercise the check
	// (the parser already stops at RETURN, so splice clauses by hand).
	q2, err := parser.Parse("MATCH (m) RETURN m")
	if err != nil {
		t.Fatal(err)
	}
	q.Parts[0].Clauses = append(q.Parts[0].Clauses, q2.Parts[0].Clauses...)
	if err := Check(q); err == nil || !strings.Contains(err.Error(), "end of a query") {
		t.Errorf("RETURN in the middle should be rejected, got %v", err)
	}
}
