// Package semantic performs static checks on parsed queries before they are
// planned: clause ordering, variable scoping rules for the linear query
// structure described in Section 2 of the paper (WITH cuts the scope), and
// the restrictions on updating clauses and aggregation placement.
package semantic

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/eval"
)

// Error is a semantic error.
type Error struct {
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return "semantic error: " + e.Msg }

func errorf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// Check validates the query and returns the first problem found.
func Check(q *ast.Query) error {
	var returnCols []string
	for i, part := range q.Parts {
		cols, err := checkSingleQuery(part)
		if err != nil {
			return err
		}
		if i == 0 {
			returnCols = cols
			continue
		}
		if len(cols) != len(returnCols) {
			return errorf("all sub-queries of a UNION must return the same number of columns")
		}
		for j := range cols {
			if cols[j] != returnCols[j] {
				return errorf("all sub-queries of a UNION must return the same columns (%q vs %q)", returnCols[j], cols[j])
			}
		}
	}
	return nil
}

type scope map[string]bool

func (s scope) names() []string {
	out := make([]string, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	return out
}

func checkSingleQuery(sq *ast.SingleQuery) ([]string, error) {
	if len(sq.Clauses) == 0 {
		return nil, errorf("a query must contain at least one clause")
	}
	sc := scope{}
	var returnCols []string
	hasUpdate := false
	for i, clause := range sq.Clauses {
		last := i == len(sq.Clauses)-1
		switch c := clause.(type) {
		case *ast.Return:
			if !last {
				return nil, errorf("RETURN can only be used at the end of a query")
			}
			cols, err := checkProjection(c.Projection, sc)
			if err != nil {
				return nil, err
			}
			returnCols = cols
		case *ast.With:
			cols, err := checkProjection(c.Projection, sc)
			if err != nil {
				return nil, err
			}
			if c.Where != nil {
				ws := scope{}
				for _, col := range cols {
					ws[col] = true
				}
				if err := checkExpr(c.Where, ws, false); err != nil {
					return nil, err
				}
			}
			sc = scope{}
			for _, col := range cols {
				sc[col] = true
			}
		case *ast.Match:
			if err := checkPattern(c.Pattern, sc, false); err != nil {
				return nil, err
			}
			for _, v := range c.Pattern.Variables() {
				sc[v] = true
			}
			if c.Where != nil {
				if err := checkExpr(c.Where, sc, false); err != nil {
					return nil, err
				}
			}
		case *ast.Unwind:
			if err := checkExpr(c.Expr, sc, false); err != nil {
				return nil, err
			}
			sc[c.Alias] = true
		case *ast.Create:
			hasUpdate = true
			if err := checkPattern(c.Pattern, sc, true); err != nil {
				return nil, err
			}
			for _, v := range c.Pattern.Variables() {
				sc[v] = true
			}
		case *ast.Merge:
			hasUpdate = true
			if err := checkPattern(ast.Pattern{Parts: []ast.PatternPart{c.Part}}, sc, false); err != nil {
				return nil, err
			}
			for _, v := range c.Part.Variables() {
				sc[v] = true
			}
		case *ast.Delete:
			hasUpdate = true
			for _, e := range c.Exprs {
				if err := checkExpr(e, sc, false); err != nil {
					return nil, err
				}
			}
		case *ast.Set:
			hasUpdate = true
			for _, item := range c.Items {
				if item.Variable != "" && !sc[item.Variable] {
					return nil, errorf("variable `%s` not defined", item.Variable)
				}
				if item.Property != nil {
					if err := checkExpr(item.Property, sc, false); err != nil {
						return nil, err
					}
				}
				if item.Value != nil {
					if err := checkExpr(item.Value, sc, false); err != nil {
						return nil, err
					}
				}
			}
		case *ast.Remove:
			hasUpdate = true
			for _, item := range c.Items {
				if item.Variable != "" && !sc[item.Variable] {
					return nil, errorf("variable `%s` not defined", item.Variable)
				}
				if item.Property != nil {
					if err := checkExpr(item.Property, sc, false); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	lastClause := sq.Clauses[len(sq.Clauses)-1]
	switch lastClause.(type) {
	case *ast.Return, *ast.Create, *ast.Merge, *ast.Delete, *ast.Set, *ast.Remove:
		// fine
	case *ast.With:
		return nil, errorf("query cannot conclude with WITH")
	default:
		if !hasUpdate {
			return nil, errorf("query cannot conclude with %s (must end with RETURN or an update clause)", clauseName(lastClause))
		}
	}
	return returnCols, nil
}

func clauseName(c ast.Clause) string {
	switch c.(type) {
	case *ast.Match:
		return "MATCH"
	case *ast.Unwind:
		return "UNWIND"
	case *ast.With:
		return "WITH"
	default:
		return "this clause"
	}
}

func checkProjection(p ast.Projection, sc scope) ([]string, error) {
	if p.Star && len(sc) == 0 {
		return nil, errorf("RETURN * is not allowed when there are no variables in scope")
	}
	var cols []string
	seen := map[string]bool{}
	if p.Star {
		for _, n := range sc.names() {
			seen[n] = true
		}
		cols = append(cols, sc.names()...)
	}
	hasAgg := false
	for _, it := range p.Items {
		if err := checkExpr(it.Expr, sc, true); err != nil {
			return nil, err
		}
		if eval.ContainsAggregate(it.Expr) {
			hasAgg = true
		}
		name := it.Name()
		if seen[name] {
			return nil, errorf("duplicate column name %q in projection", name)
		}
		seen[name] = true
		cols = append(cols, name)
	}
	for _, s := range p.OrderBy {
		if eval.ContainsAggregate(s.Expr) && !hasAgg {
			return nil, errorf("aggregation in ORDER BY requires an aggregating projection")
		}
	}
	for _, e := range []ast.Expr{p.Skip, p.Limit} {
		if e == nil {
			continue
		}
		if len(eval.Variables(e)) > 0 {
			return nil, errorf("SKIP and LIMIT cannot reference variables")
		}
		if eval.ContainsAggregate(e) {
			return nil, errorf("SKIP and LIMIT cannot contain aggregations")
		}
	}
	return cols, nil
}

// checkExpr validates variable references and aggregate placement within an
// expression. Pattern-predicate variables may be introduced locally, so they
// are tolerated.
func checkExpr(e ast.Expr, sc scope, allowAggregate bool) error {
	if e == nil {
		return nil
	}
	if !allowAggregate && eval.ContainsAggregate(e) {
		return errorf("aggregating functions are not allowed in this context (%s)", e.String())
	}
	// Aggregates cannot appear under a binding form even in aggregating
	// projections: hoisting sum(x) out of reduce(acc = 0, x IN ... | acc +
	// sum(x)) would evaluate it against the outer scope, not the bound
	// variable it references.
	var bindErr error
	eval.WalkExpr(e, func(sub ast.Expr) {
		if bindErr != nil {
			return
		}
		switch b := sub.(type) {
		case *ast.Reduce:
			if eval.ContainsAggregate(b.Expr) {
				bindErr = errorf("aggregating functions are not allowed inside a reduce expression (%s)", b.String())
			}
		case *ast.ListComprehension:
			if eval.ContainsAggregate(b.Where) || eval.ContainsAggregate(b.Projection) {
				bindErr = errorf("aggregating functions are not allowed inside a list comprehension (%s)", b.String())
			}
		}
	})
	if bindErr != nil {
		return bindErr
	}
	var patternVars scope
	eval.WalkExpr(e, func(sub ast.Expr) {
		if pp, ok := sub.(*ast.PatternPredicate); ok {
			if patternVars == nil {
				patternVars = scope{}
			}
			for _, v := range pp.Pattern.Variables() {
				patternVars[v] = true
			}
		}
	})
	for _, v := range eval.Variables(e) {
		if !sc[v] && !patternVars[v] {
			return errorf("variable `%s` not defined", v)
		}
	}
	return nil
}

// checkPattern validates a pattern, including the stricter rules for CREATE.
func checkPattern(p ast.Pattern, sc scope, forCreate bool) error {
	relVars := map[string]bool{}
	for _, part := range p.Parts {
		for _, rp := range part.Rels {
			if rp.Variable != "" {
				if relVars[rp.Variable] || sc[rp.Variable] {
					return errorf("relationship variable `%s` is bound more than once", rp.Variable)
				}
				relVars[rp.Variable] = true
			}
			if forCreate {
				if len(rp.Types) != 1 {
					return errorf("CREATE requires exactly one relationship type")
				}
				if rp.Direction == ast.DirBoth {
					return errorf("CREATE requires a directed relationship")
				}
				if rp.VarLength {
					return errorf("variable-length relationships cannot be used in CREATE")
				}
			}
		}
		for _, np := range part.Nodes {
			if np.Properties != nil {
				for _, v := range np.Properties.Values {
					if eval.ContainsAggregate(v) {
						return errorf("aggregating functions are not allowed inside patterns")
					}
				}
			}
		}
	}
	return nil
}
