package cypher

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestCrashWriterHelper is not a test: it is the child process of
// TestCrashRecoveryAfterSigkill. When re-executed with CYPHER_CRASH_CHILD=1
// it opens the durable graph in CYPHER_CRASH_DIR and appends Item nodes with
// strictly increasing i (continuing from whatever is already stored),
// printing "acked <i>" after each committed write, until it is killed.
func TestCrashWriterHelper(t *testing.T) {
	if os.Getenv("CYPHER_CRASH_CHILD") != "1" {
		t.Skip("helper process for TestCrashRecoveryAfterSigkill")
	}
	dir := os.Getenv("CYPHER_CRASH_DIR")
	g, err := Open(dir, Options{SyncMode: SyncAlways})
	if err != nil {
		fmt.Printf("child open error: %v\n", err)
		os.Exit(3)
	}
	start := int64(0)
	res := g.MustRun(`MATCH (n:Item) RETURN max(n.i) AS m`, nil)
	if rows := res.Rows(); len(rows) == 1 {
		if m, ok := rows[0][0].(int64); ok {
			start = m
		}
	}
	for i := start + 1; ; i++ {
		// One write query per item: one WAL batch, one group-committed fsync.
		g.MustRun(`CREATE (:Item {i: $i})`, map[string]any{"i": i})
		fmt.Printf("acked %d\n", i) // unbuffered: hits the pipe before the next write
	}
}

// TestCrashRecoveryAfterSigkill kills a writer process with SIGKILL in the
// middle of a write load, three times over the same data directory, and
// verifies after each kill that recovery lands exactly on a committed prefix:
// every acknowledged write is present, items are the contiguous sequence
// 1..max with no duplicates, and a checksum query (sum of i) matches the
// closed form for that prefix.
func TestCrashRecoveryAfterSigkill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	prevMax := int64(0)
	for round := 0; round < 3; round++ {
		acked := runAndKillWriter(t, dir, 30+20*round)
		if acked < prevMax {
			t.Fatalf("round %d: child acked %d, below previous round's recovered max %d", round, acked, prevMax)
		}

		g, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("round %d: recovery failed: %v", round, err)
		}
		rows := g.MustRun(`MATCH (n:Item) RETURN count(*) AS c, count(DISTINCT n.i) AS d, max(n.i) AS m, sum(n.i) AS s`, nil).Rows()
		count := rows[0][0].(int64)
		distinct := rows[0][1].(int64)
		max := rows[0][2].(int64)
		sum := rows[0][3].(int64)

		// The recovered state must be a prefix: exactly the items 1..max.
		if count != max || distinct != max {
			t.Fatalf("round %d: recovered %d items (%d distinct) but max i is %d — not a contiguous prefix", round, count, distinct, max)
		}
		if want := max * (max + 1) / 2; sum != want {
			t.Fatalf("round %d: checksum sum(i)=%d, want %d for prefix 1..%d", round, sum, want, max)
		}
		// Durability: everything the child saw committed must have survived.
		if max < acked {
			t.Fatalf("round %d: child acked %d but only %d recovered — committed writes lost", round, acked, max)
		}
		// And not more than one in-flight write beyond the last ack can appear.
		if max > acked+1 {
			t.Fatalf("round %d: recovered %d items but only %d acked — phantom writes", round, max, acked)
		}
		if ds, ok := g.DurabilityStats(); ok {
			t.Logf("round %d: acked=%d recovered=%d (gen %d, %d snapshot + %d WAL records, torn=%v)",
				round, acked, max, ds.Generation, ds.Recovery.SnapshotRecords, ds.Recovery.WALRecords, ds.Recovery.TornTail)
		}
		// Occasionally checkpoint so later rounds also exercise
		// snapshot-based recovery.
		if round == 1 {
			if err := g.Checkpoint(); err != nil {
				t.Fatalf("round %d: checkpoint: %v", round, err)
			}
		}
		prevMax = max
		if err := g.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
	}
}

// TestCrashPublishHelper is not a test: it is the child process of
// TestCrashRecoveryKilledBetweenAppendAndPublish. It appends Item nodes like
// TestCrashWriterHelper, but after CYPHER_CRASH_KILL_AFTER acknowledged
// writes it installs a commit hook that parks the next write forever in the
// narrowest window MVCC adds to the commit path: after the batch is appended
// to the WAL but BEFORE the new version is published to readers. It prints
// "appended <i>" from inside that window so the parent can SIGKILL it there.
func TestCrashPublishHelper(t *testing.T) {
	if os.Getenv("CYPHER_CRASH_PUBLISH_CHILD") != "1" {
		t.Skip("helper process for TestCrashRecoveryKilledBetweenAppendAndPublish")
	}
	dir := os.Getenv("CYPHER_CRASH_DIR")
	killAfter, _ := strconv.Atoi(os.Getenv("CYPHER_CRASH_KILL_AFTER"))
	g, err := Open(dir, Options{SyncMode: SyncAlways})
	if err != nil {
		fmt.Printf("child open error: %v\n", err)
		os.Exit(3)
	}
	start := int64(0)
	res := g.MustRun(`MATCH (n:Item) RETURN max(n.i) AS m`, nil)
	if rows := res.Rows(); len(rows) == 1 {
		if m, ok := rows[0][0].(int64); ok {
			start = m
		}
	}
	for i := start + 1; ; i++ {
		if int(i-start) > killAfter {
			doomed := i
			g.engine.SetCommitHook(func() {
				// Readers must still be served while this writer is wedged
				// mid-commit; prove it from inside the window before
				// announcing it (the un-published write must be invisible).
				res := g.MustRun(`MATCH (n:Item) RETURN max(n.i) AS m`, nil)
				if m, _ := res.Rows()[0][0].(int64); m != doomed-1 {
					fmt.Printf("child error: read inside commit window saw max %d, want %d\n", m, doomed-1)
					os.Exit(3)
				}
				fmt.Printf("appended %d\n", doomed) // parent SIGKILLs us here
				select {}
			})
		}
		g.MustRun(`CREATE (:Item {i: $i})`, map[string]any{"i": i})
		fmt.Printf("acked %d\n", i)
	}
}

// TestCrashRecoveryKilledBetweenAppendAndPublish SIGKILLs a writer exactly
// between WAL append and MVCC version publish, three times over the same data
// directory. The parked write was never acknowledged (and never fsynced), so
// recovery must land on the exact committed prefix — every acked item, 1..max
// contiguous, at most the one in-flight item beyond the last ack — and the
// recovered store must serve reads immediately.
func TestCrashRecoveryKilledBetweenAppendAndPublish(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	prevMax := int64(0)
	for round := 0; round < 3; round++ {
		acked, parked := runAndKillPublishWriter(t, dir, 10+5*round)
		if parked != acked+1 {
			t.Fatalf("round %d: child parked write %d, want %d (last ack + 1)", round, parked, acked)
		}
		if acked < prevMax {
			t.Fatalf("round %d: child acked %d, below previous round's recovered max %d", round, acked, prevMax)
		}

		g, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("round %d: recovery failed: %v", round, err)
		}
		// Serve reads immediately: the first query after Open must work
		// without any writer ever running in this process.
		rows := g.MustRun(`MATCH (n:Item) RETURN count(*) AS c, count(DISTINCT n.i) AS d, max(n.i) AS m, sum(n.i) AS s`, nil).Rows()
		count := rows[0][0].(int64)
		distinct := rows[0][1].(int64)
		max := rows[0][2].(int64)
		sum := rows[0][3].(int64)

		if count != max || distinct != max {
			t.Fatalf("round %d: recovered %d items (%d distinct) but max i is %d — not a contiguous prefix", round, count, distinct, max)
		}
		if want := max * (max + 1) / 2; sum != want {
			t.Fatalf("round %d: checksum sum(i)=%d, want %d for prefix 1..%d", round, sum, want, max)
		}
		if max < acked {
			t.Fatalf("round %d: child acked %d but only %d recovered — committed writes lost", round, acked, max)
		}
		// The parked write was appended but never acked or fsynced: it may
		// appear (the OS flushed the append) or not, but nothing beyond it can.
		if max > parked {
			t.Fatalf("round %d: recovered %d items but the parked write was %d — phantom writes", round, max, parked)
		}
		// The recovered engine accepts writes again (the publish machinery
		// came back in a clean state).
		g.MustRun(`CREATE (:Item {i: $i})`, map[string]any{"i": max + 1})
		if got := g.MustRun(`MATCH (n:Item) RETURN max(n.i) AS m`, nil).Rows()[0][0].(int64); got != max+1 {
			t.Fatalf("round %d: write after recovery not visible (max %d, want %d)", round, got, max+1)
		}
		if st := g.MVCCStats(); st.PublishedEpoch != st.LiveEpoch || st.ActivePins != 0 {
			t.Fatalf("round %d: recovered engine in a dirty MVCC state: %+v", round, st)
		}
		prevMax = max + 1
		if err := g.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
	}
}

// runAndKillPublishWriter re-executes the test binary as a publish-race crash
// child over dir, waits until it reports a write parked between WAL append
// and version publish, SIGKILLs it in that window, and returns the highest
// acknowledged i and the parked i.
func runAndKillPublishWriter(t *testing.T, dir string, killAfter int) (acked, parked int64) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashPublishHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CYPHER_CRASH_PUBLISH_CHILD=1",
		"CYPHER_CRASH_DIR="+dir,
		"CYPHER_CRASH_KILL_AFTER="+strconv.Itoa(killAfter))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	watchdog := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	defer watchdog.Stop()
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if n, ok := strings.CutPrefix(line, "acked "); ok {
			if i, err := strconv.ParseInt(n, 10, 64); err == nil && i > acked {
				acked = i
			}
		} else if n, ok := strings.CutPrefix(line, "appended "); ok {
			if i, err := strconv.ParseInt(n, 10, 64); err == nil {
				parked = i
			}
			break // the child is parked holding the un-published write
		} else if strings.Contains(line, "error") {
			t.Fatalf("child reported: %s", line)
		}
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL in the append→publish window
		t.Fatal(err)
	}
	_ = cmd.Wait()
	if parked == 0 {
		t.Fatal("child never reached the append→publish window")
	}
	return acked, parked
}

// runAndKillWriter re-executes the test binary as a crash child over dir,
// SIGKILLs it after it has acknowledged at least minAcks writes, and returns
// the highest acknowledged i.
func runAndKillWriter(t *testing.T, dir string, minAcks int) int64 {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashWriterHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "CYPHER_CRASH_CHILD=1", "CYPHER_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	var lastAcked int64
	acks := 0
	scanner := bufio.NewScanner(stdout)
	deadline := time.Now().Add(30 * time.Second)
	// Scan blocks on a silent child, so the deadline check inside the loop
	// cannot fire on its own; a watchdog kill unblocks the pipe and the test
	// then fails fast on acks == 0 instead of hanging to the go-test timeout.
	watchdog := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	defer watchdog.Stop()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if n, ok := strings.CutPrefix(line, "acked "); ok {
			if i, err := strconv.ParseInt(n, 10, 64); err == nil {
				lastAcked = i
				acks++
			}
		} else if strings.Contains(line, "error") {
			t.Fatalf("child reported: %s", line)
		}
		// Kill mid-load, without waiting for a quiet moment: the next write
		// may be anywhere between "not started" and "appended but not
		// fsynced".
		if acks >= minAcks {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child produced too few acks before deadline")
		}
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	// The child keeps committing between our decision to kill and the kill
	// landing; drain the acks it managed to pipe out so the caller's
	// "at most one unacknowledged commit" bound is measured against the
	// child's true last ack, not the point where we stopped reading.
	for scanner.Scan() {
		if n, ok := strings.CutPrefix(strings.TrimSpace(scanner.Text()), "acked "); ok {
			if i, err := strconv.ParseInt(n, 10, 64); err == nil && i > lastAcked {
				lastAcked = i
			}
		}
	}
	_ = cmd.Wait()
	if acks == 0 {
		t.Fatal("child never acknowledged a write")
	}
	return lastAcked
}
