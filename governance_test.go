package cypher

// Query-lifecycle governance battery: deadlines, client cancellation, memory
// budgets and panic isolation, with hygiene assertions that every exit path
// releases what it held — MVCC pins back to zero, pooled batches returned,
// goroutine count stable — and that the engine keeps serving afterwards.
//
// The victim query throughout is a cross product over a large node set
// filtered down to nothing: it iterates |V|^2 pairs without materializing
// rows, so it cannot finish in test time and can only end by governance.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/value"
)

// unboundedQuery never completes on govNodes nodes (govNodes^2 pairs) but
// holds no per-row state, so only cancellation/deadline can stop it.
const unboundedQuery = `MATCH (a), (b) WHERE a.i + b.i = -1 RETURN count(*) AS c`

const govNodes = 100_000

// govStore is the shared 100k-node read-only store; governance tests only
// read, so one build serves every configuration.
var govStoreOnce sync.Once
var govStore *graph.Graph

func governedStore() *graph.Graph {
	govStoreOnce.Do(func() {
		govStore = graph.New()
		for i := 0; i < govNodes; i++ {
			govStore.CreateNode([]string{"G"}, map[string]value.Value{"i": value.NewInt(int64(i))})
		}
	})
	return govStore
}

// govModes are the execution configurations the acceptance criteria name:
// serial row-at-a-time and 8-worker parallel with the vectorized pipeline.
func govModes() map[string]Options {
	return map[string]Options{
		"serial":     {BatchSize: -1},
		"vectorized": {Parallelism: 8},
	}
}

// assertHygiene checks the engine leaked nothing: no live MVCC pins, pooled
// batches all returned, and a follow-up query on the same engine succeeds.
func assertHygiene(t *testing.T, g *Graph, batchBaseline int64) {
	t.Helper()
	if pins := g.MVCCStats().ActivePins; pins != 0 {
		t.Errorf("leaked MVCC pins: ActivePins = %d, want 0", pins)
	}
	if n := exec.BatchesOutstanding(); n != batchBaseline {
		t.Errorf("leaked pooled batches: outstanding = %d, want %d", n, batchBaseline)
	}
	res, err := g.Run(`MATCH (n) RETURN count(n) AS c`, nil)
	if err != nil {
		t.Fatalf("engine unusable after governed failure: %v", err)
	}
	if c := res.Records()[0]["c"]; c != int64(govNodes) {
		t.Errorf("post-failure read returned %v nodes, want %d", c, govNodes)
	}
}

func TestDeadlineKillsUnboundedQuery(t *testing.T) {
	for name, opts := range govModes() {
		t.Run(name, func(t *testing.T) {
			g := Wrap(governedStore(), opts)
			baseline := exec.BatchesOutstanding()

			start := time.Now()
			_, err := g.QueryContext(context.Background(), unboundedQuery, nil,
				QueryOptions{Timeout: 100 * time.Millisecond})
			elapsed := time.Since(start)

			var canceled *QueryCanceledError
			if !errors.As(err, &canceled) {
				t.Fatalf("err = %v (%T), want *QueryCanceledError", err, err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("err = %v, want a deadline-exceeded cause", err)
			}
			// The deadline is 100ms; generous slack for loaded CI, but far
			// below the hours the cross product would otherwise take.
			if elapsed > 3*time.Second {
				t.Errorf("deadline took %v to kill the query", elapsed)
			}
			if gs := g.GovernanceStats(); gs.DeadlineExceeded == 0 {
				t.Errorf("DeadlineExceeded counter = 0 after a deadline kill")
			}
			assertHygiene(t, g, baseline)
		})
	}
}

func TestClientCancelKillsUnboundedQuery(t *testing.T) {
	for name, opts := range govModes() {
		t.Run(name, func(t *testing.T) {
			g := Wrap(governedStore(), opts)
			baseline := exec.BatchesOutstanding()

			ctx, cancel := context.WithCancel(context.Background())
			canceledAt := make(chan time.Time, 1)
			go func() {
				time.Sleep(50 * time.Millisecond)
				canceledAt <- time.Now()
				cancel()
			}()
			_, err := g.RunContext(ctx, unboundedQuery, nil)
			returned := time.Now()

			var cerr *QueryCanceledError
			if !errors.As(err, &cerr) {
				t.Fatalf("err = %v (%T), want *QueryCanceledError", err, err)
			}
			if errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("cancellation misreported as deadline: %v", err)
			}
			// The engine checks every CancelCheckStride rows; the observed
			// kill latency is micro-to-milliseconds of work. Allow wide CI
			// slack while still proving promptness.
			if lat := returned.Sub(<-canceledAt); lat > time.Second {
				t.Errorf("cancel-to-return latency %v, want prompt", lat)
			}
			if gs := g.GovernanceStats(); gs.Canceled == 0 {
				t.Errorf("Canceled counter = 0 after a client cancel")
			}
			assertHygiene(t, g, baseline)
		})
	}
}

func TestMemoryBudgetStopsMaterialization(t *testing.T) {
	g := Wrap(governedStore(), Options{})
	baseline := exec.BatchesOutstanding()

	// Each of these materializes: result table, ORDER BY buffer, DISTINCT
	// set, aggregation groups with collect().
	queries := []string{
		`MATCH (n) RETURN n.i`,
		`MATCH (n) RETURN n.i ORDER BY n.i DESC`,
		`MATCH (n) RETURN DISTINCT n.i`,
		`MATCH (n) RETURN n.i % 1000 AS k, collect(n.i) AS all`,
	}
	for _, q := range queries {
		_, err := g.QueryContext(context.Background(), q, nil, QueryOptions{MemoryBudget: 64 << 10})
		var exhausted *ResourceExhaustedError
		if !errors.As(err, &exhausted) {
			t.Fatalf("%s: err = %v (%T), want *ResourceExhaustedError", q, err, err)
		}
		if exhausted.Used <= exhausted.Budget {
			t.Errorf("%s: reported Used %d within Budget %d", q, exhausted.Used, exhausted.Budget)
		}
	}
	if gs := g.GovernanceStats(); gs.MemoryExhausted < uint64(len(queries)) {
		t.Errorf("MemoryExhausted = %d, want >= %d", gs.MemoryExhausted, len(queries))
	}
	// An adequate budget lets the same query finish and reports its usage.
	res, err := g.QueryContext(context.Background(), `MATCH (n) RETURN count(n) AS c`, nil,
		QueryOptions{MemoryBudget: 1 << 20})
	if err != nil {
		t.Fatalf("budgeted count failed: %v", err)
	}
	if res.Records()[0]["c"] != int64(govNodes) {
		t.Errorf("budgeted count = %v", res.Records()[0]["c"])
	}
	if gs := g.GovernanceStats(); gs.PeakQueryBytes <= 0 {
		t.Errorf("PeakQueryBytes = %d after budgeted queries, want > 0", gs.PeakQueryBytes)
	}
	assertHygiene(t, g, baseline)
}

func TestPanicIsolatedToQuery(t *testing.T) {
	// A poisoned scalar function models an operator bug: it panics only for
	// the poisoned argument, so the same function proves both containment
	// (panicking call) and recovery (clean call afterwards).
	eval.RegisterFunction("govtest_poison", func(args []value.Value) (value.Value, error) {
		if n, ok := args[0].(value.Int); ok && int64(n) >= 10 {
			panic(fmt.Sprintf("poisoned operator reached row %d", int64(n)))
		}
		return args[0], nil
	})
	for name, opts := range govModes() {
		t.Run(name, func(t *testing.T) {
			g := Wrap(governedStore(), opts)
			baseline := exec.BatchesOutstanding()

			_, err := g.Run(`MATCH (n) WHERE govtest_poison(n.i) = -1 RETURN count(*)`, nil)
			var pe *QueryPanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v (%T), want *QueryPanicError", err, err)
			}
			if len(pe.Stack) == 0 {
				t.Errorf("panic error carries no stack")
			}
			if gs := g.GovernanceStats(); gs.PanicsRecovered == 0 {
				t.Errorf("PanicsRecovered counter = 0 after a contained panic")
			}
			// The same engine must serve the next query — including one
			// through the same function outside its poisoned range.
			res, err := g.Run(`RETURN govtest_poison(5) AS c`, nil)
			if err != nil {
				t.Fatalf("engine unusable after contained panic: %v", err)
			}
			if res.Records()[0]["c"] != int64(5) {
				t.Errorf("post-panic query = %v, want 5", res.Records()[0]["c"])
			}
			assertHygiene(t, g, baseline)
		})
	}
}

// TestCancellationHammer races many governed queries against aggressive
// deadlines and cancels across all execution modes; under -race it doubles
// as a data-race probe on the shared QueryCtx. Afterwards everything must be
// back to baseline: pins, pooled batches, goroutines.
func TestCancellationHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short")
	}
	graphs := []*Graph{
		Wrap(governedStore(), Options{BatchSize: -1}),
		Wrap(governedStore(), Options{Parallelism: 8}),
		Wrap(governedStore(), Options{Parallelism: 4, MorselSize: 256}),
	}
	baseline := exec.BatchesOutstanding()
	// Warm up, then take the goroutine baseline (the runtime keeps worker
	// pools and timer goroutines around after first use).
	for _, g := range graphs {
		g.MustRun(`MATCH (n) WHERE n.i < 0 RETURN count(*)`, nil)
	}
	goroutineBaseline := runtime.NumGoroutine()

	const workers = 6
	const iters = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g := graphs[(w+i)%len(graphs)]
				switch i % 3 {
				case 0: // deadline kill
					_, err := g.QueryContext(context.Background(), unboundedQuery, nil,
						QueryOptions{Timeout: time.Duration(1+i%7) * time.Millisecond})
					if err == nil {
						panic("unbounded query finished")
					}
				case 1: // explicit cancel mid-flight
					ctx, cancel := context.WithCancel(context.Background())
					go func() {
						time.Sleep(time.Duration(i%5) * time.Millisecond)
						cancel()
					}()
					g.RunContext(ctx, unboundedQuery, nil)
					cancel()
				case 2: // budget kill interleaved with the cancels
					g.QueryContext(context.Background(), `MATCH (n) RETURN n.i ORDER BY n.i`, nil,
						QueryOptions{MemoryBudget: 32 << 10})
				}
			}
		}(w)
	}
	wg.Wait()

	for _, g := range graphs {
		if pins := g.MVCCStats().ActivePins; pins != 0 {
			t.Errorf("hammer leaked pins: %d", pins)
		}
		if _, err := g.Run(`MATCH (n) WHERE n.i = 1 RETURN n.i`, nil); err != nil {
			t.Errorf("engine unusable after hammer: %v", err)
		}
	}
	if n := exec.BatchesOutstanding(); n != baseline {
		t.Errorf("hammer leaked pooled batches: outstanding = %d, want %d", n, baseline)
	}
	// Let cancel goroutines and worker teardown drain, then compare.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutineBaseline+5 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutineBaseline+5 {
		t.Errorf("goroutines grew from %d to %d after hammer", goroutineBaseline, n)
	}
}

func TestEngineDefaultTimeoutAndOverrides(t *testing.T) {
	g := Wrap(governedStore(), Options{DefaultTimeout: 50 * time.Millisecond})

	// Plain Run inherits the engine default.
	_, err := g.Run(unboundedQuery, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run under DefaultTimeout: err = %v, want deadline exceeded", err)
	}
	// A per-query override < 0 disables the engine default entirely; prove
	// it by running a query that needs longer than 50ms... without a second
	// clock, prove it the other way: a fast query under override succeeds.
	if _, err := g.QueryContext(context.Background(), `RETURN 1`, nil, QueryOptions{Timeout: -1}); err != nil {
		t.Fatalf("disabled-timeout query failed: %v", err)
	}
	// A tighter per-query override wins over the default.
	start := time.Now()
	_, err = g.QueryContext(context.Background(), unboundedQuery, nil, QueryOptions{Timeout: 10 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("override timeout: err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("10ms override took %v", elapsed)
	}
}
