package cypher

// Tests for morsel-driven parallel read execution: determinism against the
// serial engine (byte-identical ORDER BY output, identical aggregation
// results across worker counts), the documented fallback conditions, and a
// race hammer that mixes parallel readers with writers (meaningful under
// `go test -race`).

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/value"
)

// socialPair builds two engines over identical social-network stores: one
// serial, one parallel with a small morsel size so even modest graphs split
// into many morsels.
func socialPair(people, friends, parallelism int) (serial, parallel *Graph) {
	build := func(opts Options) *Graph {
		return Wrap(datasets.SocialNetwork(datasets.SocialConfig{People: people, FriendsEach: friends, Seed: 7}), opts)
	}
	return build(Options{}), build(Options{Parallelism: parallelism, MorselSize: 128})
}

func TestParallelOrderByByteIdentical(t *testing.T) {
	serial, parallel := socialPair(3000, 4, 4)
	queries := []string{
		// Heavy ties on age: stable-sort tie-breaking must match serial.
		"MATCH (p:Person) RETURN p.age AS age, p.name AS name ORDER BY age",
		"MATCH (p:Person) WHERE p.age > 30 RETURN p.name AS n ORDER BY n DESC",
		"MATCH (a:Person)-[:KNOWS]->(b) RETURN a.name AS x, b.name AS y ORDER BY x LIMIT 50",
		"MATCH (p:Person) RETURN DISTINCT p.age AS age ORDER BY age",
	}
	for _, q := range queries {
		rs := serial.MustRun(q, nil)
		rp := parallel.MustRun(q, nil)
		if rs.Parallelism() != 1 {
			t.Errorf("serial engine reported parallelism %d for %s", rs.Parallelism(), q)
		}
		if rp.Parallelism() < 2 {
			t.Errorf("parallel engine stayed serial for %s", q)
		}
		if rs.String() != rp.String() {
			t.Errorf("parallel ORDER BY output differs from serial for %s\nserial:\n%s\nparallel:\n%s",
				q, rs.String(), rp.String())
		}
	}
}

func TestParallelUnorderedSameBag(t *testing.T) {
	serial, parallel := socialPair(3000, 4, 4)
	q := "MATCH (p:Person) WHERE p.age >= 40 RETURN p.name AS n, p.age AS age"
	rs := serial.MustRun(q, nil)
	rp := parallel.MustRun(q, nil)
	if rp.Parallelism() < 2 {
		t.Fatalf("expected parallel execution for %s", q)
	}
	sortLines := func(s string) string {
		lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				if lines[j] < lines[i] {
					lines[i], lines[j] = lines[j], lines[i]
				}
			}
		}
		return strings.Join(lines, "\n")
	}
	if sortLines(rs.String()) != sortLines(rp.String()) {
		t.Errorf("parallel unordered result is not the same bag as serial for %s", q)
	}
	if rs.Len() != rp.Len() {
		t.Errorf("row counts differ: serial %d, parallel %d", rs.Len(), rp.Len())
	}
}

func TestParallelAggregationAcrossWorkerCounts(t *testing.T) {
	baseline, _ := socialPair(3000, 4, 2)
	queries := []string{
		"MATCH (p:Person) RETURN count(*) AS c",
		"MATCH (p:Person) RETURN p.age AS age, count(*) AS c",
		"MATCH (p:Person) RETURN p.age AS age, collect(p.name) AS names",
		"MATCH (p:Person) RETURN sum(p.age) AS total, min(p.age) AS lo, max(p.age) AS hi, avg(p.age) AS mean",
		"MATCH (a:Person)-[:KNOWS]->(b) RETURN a.age AS age, count(DISTINCT b.age) AS c",
		"MATCH (a:Person)-[:KNOWS*1..2]->(b) RETURN count(*) AS paths",
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = baseline.MustRun(q, nil).String()
	}
	for _, workers := range []int{1, 4, 8} {
		g := Wrap(datasets.SocialNetwork(datasets.SocialConfig{People: 3000, FriendsEach: 4, Seed: 7}),
			Options{Parallelism: workers, MorselSize: 128})
		for i, q := range queries {
			res := g.MustRun(q, nil)
			if workers > 1 && res.Parallelism() < 2 {
				t.Errorf("parallelism=%d stayed serial for %s", workers, q)
			}
			if res.String() != want[i] {
				t.Errorf("parallelism=%d changed the result of %s\nwant:\n%s\ngot:\n%s",
					workers, q, want[i], res.String())
			}
		}
	}
}

// TestParallelAggregateInSerialTailDeterministic covers an aggregate that
// the analysis leaves in the serial tail (a second MATCH ends the streaming
// segment before the Aggregate is reached): collect() order and first-seen
// group order are input-order-sensitive, so the merge must be
// order-preserving for repeated runs to match serial execution.
func TestParallelAggregateInSerialTailDeterministic(t *testing.T) {
	build := func(par int) *Graph {
		g := NewWithOptions(Options{Parallelism: par, MorselSize: 8})
		for i := 0; i < 200; i++ {
			g.MustRun("CREATE (:Person {name: $n})", map[string]any{"n": fmt.Sprintf("p%03d", i)})
		}
		g.MustRun("CREATE (:Team {name: 't'})", nil)
		return g
	}
	serial, parallel := build(1), build(4)
	q := "MATCH (p:Person) WHERE p.name <> '' MATCH (t:Team) RETURN t.name AS team, collect(p.name) AS names"
	want := serial.MustRun(q, nil).String()
	for i := 0; i < 20; i++ {
		got := parallel.MustRun(q, nil)
		if got.Parallelism() < 2 {
			t.Fatalf("expected parallel execution, got %d workers", got.Parallelism())
		}
		if got.String() != want {
			t.Fatalf("run %d: collect() over the merged stream diverged from serial\nwant:\n%s\ngot:\n%s",
				i, want, got.String())
		}
	}
}

func TestParallelFallbackConditions(t *testing.T) {
	g := NewWithOptions(Options{Parallelism: 8, MorselSize: 4})
	for i := 0; i < 200; i++ {
		g.MustRun("CREATE (:Person {name: $n, age: $a})", map[string]any{"n": fmt.Sprintf("p%d", i), "a": i % 10})
	}
	cases := []struct {
		query  string
		reason string // substring expected in the EXPLAIN fallback note
	}{
		{"MATCH (p:Person) RETURN p.name AS n LIMIT 3", "early exit"},
		{"MATCH (p:Person) RETURN p.name AS n UNION MATCH (p:Person) RETURN p.name AS n", "UNION"},
		{"CREATE (:Audit {at: 1})", "updating"},
	}
	for _, c := range cases {
		res := g.MustRun(c.query, nil)
		if res.Parallelism() != 1 {
			t.Errorf("%s should fall back to serial, used %d workers", c.query, res.Parallelism())
		}
		pl, err := g.Explain(c.query)
		if err != nil {
			t.Fatalf("explain %s: %v", c.query, err)
		}
		if !strings.Contains(pl, "parallel: serial") || !strings.Contains(pl, c.reason) {
			t.Errorf("EXPLAIN of %s should report a serial fallback mentioning %q:\n%s", c.query, c.reason, pl)
		}
		if !strings.Contains(pl, "runtime parallelism: 1") {
			t.Errorf("EXPLAIN of %s should choose runtime parallelism 1:\n%s", c.query, pl)
		}
	}

	// LIMIT above a Sort/Aggregate barrier cannot exit early, so it stays
	// parallel-eligible.
	res := g.MustRun("MATCH (p:Person) RETURN p.name AS n ORDER BY n LIMIT 3", nil)
	if res.Parallelism() < 2 {
		t.Errorf("LIMIT above ORDER BY should stay parallel, used %d workers", res.Parallelism())
	}

	// A scan that fits in one morsel is not worth a worker pool.
	small := NewWithOptions(Options{Parallelism: 8})
	small.MustRun("CREATE (:Person {name: 'only'})", nil)
	if got := small.MustRun("MATCH (p:Person) RETURN p.name AS n, p.name AS m", nil); got.Parallelism() != 1 {
		t.Errorf("single-morsel scan should run serially, used %d workers", got.Parallelism())
	}
}

func TestParallelExplainEligible(t *testing.T) {
	_, parallel := socialPair(1000, 2, 4)
	pl, err := parallel.Explain("MATCH (p:Person) RETURN p.age AS age, count(*) AS c")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"parallel: eligible", "partial aggregation", "runtime parallelism: 4"} {
		if !strings.Contains(pl, want) {
			t.Errorf("EXPLAIN should contain %q:\n%s", want, pl)
		}
	}
}

// TestParallelReadersWithWriters hammers one engine with parallel read
// queries while writers mutate the graph. Readers hold the engine's shared
// lock for their whole morsel-parallel run, so every worker must see a
// stable snapshot; the race detector verifies there is no unsynchronised
// access between morsel workers and writers.
func TestParallelReadersWithWriters(t *testing.T) {
	g := Wrap(datasets.SocialNetwork(datasets.SocialConfig{People: 2000, FriendsEach: 4, Seed: 3}),
		Options{Parallelism: 4, MorselSize: 64})
	const (
		readers    = 4
		writers    = 2
		iterations = 25
	)
	var wg sync.WaitGroup
	errCh := make(chan error, readers+writers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			queries := []string{
				"MATCH (p:Person) RETURN p.age AS age, count(*) AS c",
				"MATCH (p:Person) WHERE p.age > 30 RETURN p.name AS n ORDER BY n LIMIT 10",
				"MATCH (a:Person)-[:KNOWS]->(b) RETURN count(b) AS c",
			}
			for i := 0; i < iterations; i++ {
				if _, err := g.Run(queries[(r+i)%len(queries)], nil); err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				q := fmt.Sprintf("CREATE (:Person {name: 'new-%d-%d', age: %d})", w, i, i%90)
				if _, err := g.Run(q, nil); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	res := g.MustRun("MATCH (p:Person) RETURN count(*) AS c", nil)
	want := int64(2000 + writers*iterations)
	if got := res.Records()[0]["c"]; got != want {
		t.Errorf("node count after hammer = %v, want %d", got, want)
	}
}

// TestMVCCChecksumHammer (PR 6) hammers the MVCC engine with reader
// goroutines computing multi-query checksums while writer goroutines commit
// invariant-preserving mutations. Every write preserves two invariants —
// transfers keep the total balance constant, and :Even nodes are only
// created two at a time — so EVERY committed version satisfies them. A
// reader that tore across versions (saw half a transfer, or one node of a
// pair) would break a checksum; snapshot isolation says each reader
// iteration sees exactly one committed version, so the checksums must hold
// on every single read. Meaningful under `go test -race`: morsel-parallel
// read workers scan pinned versions while writers mutate the primary.
func TestMVCCChecksumHammer(t *testing.T) {
	g := NewWithOptions(Options{Parallelism: 4, MorselSize: 32})
	const accounts = 200
	const startBal = 100
	g.MustRun("UNWIND range(0, $n - 1) AS i CREATE (:Acct {id: i, bal: $b})",
		map[string]any{"n": accounts, "b": startBal})
	const wantTotal = int64(accounts * startBal)

	const (
		readers    = 6
		writers    = 3
		iterations = 40
	)
	var wg sync.WaitGroup
	errCh := make(chan error, readers+writers)
	fail := func(format string, a ...any) {
		select {
		case errCh <- fmt.Errorf(format, a...):
		default:
		}
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				// The balance checksum: constant under every committed
				// transfer, torn under any partial one.
				res, err := g.Run("MATCH (a:Acct) RETURN sum(a.bal) AS total, count(a) AS n", nil)
				if err != nil {
					fail("reader %d: %v", r, err)
					return
				}
				rec := res.Records()[0]
				if rec["total"] != wantTotal || rec["n"] != int64(accounts) {
					fail("reader %d iteration %d: torn read — total=%v n=%v, want total=%d n=%d",
						r, i, rec["total"], rec["n"], wantTotal, accounts)
					return
				}
				// The pair checksum: every committed version has an even
				// number of :Even nodes.
				res, err = g.Run("MATCH (e:Even) RETURN count(e) AS c", nil)
				if err != nil {
					fail("reader %d: %v", r, err)
					return
				}
				if c := res.Records()[0]["c"].(int64); c%2 != 0 {
					fail("reader %d iteration %d: saw %d :Even nodes (odd — half a committed pair)", r, i, c)
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				var err error
				if w == 0 {
					// Pair creator: both nodes in one query (one version).
					_, err = g.Run("CREATE (:Even) CREATE (:Even)", nil)
				} else {
					// Transfer: move 1 between two accounts in one query.
					from := (w*31 + i*7) % accounts
					to := (from + 1 + i%17) % accounts
					_, err = g.Run(
						"MATCH (a:Acct {id: $from}) MATCH (b:Acct {id: $to}) SET a.bal = a.bal - 1 SET b.bal = b.bal + 1",
						map[string]any{"from": from, "to": to})
				}
				if err != nil {
					fail("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// Final state: all transfers committed, total unchanged, all pairs whole.
	res := g.MustRun("MATCH (a:Acct) RETURN sum(a.bal) AS total", nil)
	if got := res.Records()[0]["total"]; got != wantTotal {
		t.Errorf("final total = %v, want %d", got, wantTotal)
	}
	res = g.MustRun("MATCH (e:Even) RETURN count(e) AS c", nil)
	if got := res.Records()[0]["c"]; got != int64(iterations*2) {
		t.Errorf("final :Even count = %v, want %d", got, iterations*2)
	}
	stats := g.MVCCStats()
	if !stats.Enabled || stats.Versions != 2 {
		t.Errorf("hammer should leave MVCC enabled with 2 versions: %+v", stats)
	}
	if stats.ActivePins != 0 {
		t.Errorf("pins leaked after hammer: %+v", stats)
	}
}

// TestParallelSeekLeafByteIdentical (PR 5): index seeks in leaf position are
// partitionable — a range-predicate query over an indexed label must run
// morsel-parallel and produce byte-identical ORDER BY output (and identical
// aggregates) to the serial engine.
func TestParallelSeekLeafByteIdentical(t *testing.T) {
	build := func(opts Options) *Graph {
		g := graph.New()
		for i := 0; i < 3000; i++ {
			g.CreateNode([]string{"Person"}, map[string]value.Value{
				"age":  value.NewInt(int64(i % 100)),
				"name": value.NewString(fmt.Sprintf("p%04d", i)),
			})
		}
		g.CreateIndex("Person", "age")
		g.CreateIndex("Person", "name")
		return Wrap(g, opts)
	}
	serial := build(Options{})
	parallel := build(Options{Parallelism: 4, MorselSize: 128})
	queries := []string{
		"MATCH (p:Person) WHERE p.age > 50 RETURN p.name AS n ORDER BY n",
		"MATCH (p:Person) WHERE p.age > 50 AND p.age <= 90 RETURN count(p) AS c, min(p.name) AS lo",
		"MATCH (p:Person) WHERE p.name STARTS WITH 'p1' RETURN p.name AS n ORDER BY n DESC",
		"MATCH (p:Person) WHERE p.age IN [1, 2, 3, 4, 5, 6, 7, 8, 9, 10] RETURN p.age AS age, count(*) AS c",
	}
	for _, q := range queries {
		rs := serial.MustRun(q, nil)
		rp := parallel.MustRun(q, nil)
		if !strings.Contains(rp.Plan(), "Seek") {
			t.Fatalf("query should plan a seek: %s\n%s", q, rp.Plan())
		}
		if rp.Parallelism() < 2 {
			t.Errorf("seek-leaf query stayed serial: %s\n%s", q, rp.Plan())
		}
		if rs.String() != rp.String() {
			t.Errorf("parallel seek output differs from serial for %s\nserial:\n%s\nparallel:\n%s",
				q, rs.String(), rp.String())
		}
	}
	// A seek too small to split stays serial (single morsel).
	rp := parallel.MustRun("MATCH (p:Person) WHERE p.age = 1 RETURN count(p) AS c", nil)
	if rp.Parallelism() != 1 {
		t.Errorf("single-morsel seek should stay serial, used %d workers", rp.Parallelism())
	}
}
