// Package cypher is an embeddable, from-scratch Go implementation of the
// Cypher property graph query language as formalised in "Cypher: An Evolving
// Query Language for Property Graphs" (SIGMOD 2018).
//
// The package bundles an in-memory property graph store with native
// adjacency, a parser for the core Cypher 9 language (patterns, MATCH,
// OPTIONAL MATCH, WHERE, WITH, RETURN, UNWIND, UNION, ORDER BY / SKIP /
// LIMIT, and the updating clauses CREATE, MERGE, SET, REMOVE, DELETE), a
// cost-informed planner and a push-based execution engine implementing the
// paper's pattern-matching semantics (bag semantics and relationship
// isomorphism).
//
// Quick start:
//
//	g := cypher.New()
//	g.MustRun(`CREATE (:Person {name: 'Ada'})-[:KNOWS]->(:Person {name: 'Grace'})`, nil)
//	res, err := g.Run(`MATCH (a:Person)-[:KNOWS]->(b) RETURN a.name, b.name`, nil)
package cypher

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/value"
)

// Morphism selects the pattern-matching semantics used by a Graph.
type Morphism = core.Morphism

// Pattern-matching modes. EdgeIsomorphism is Cypher's semantics as defined in
// the paper; the other two implement the "configurable morphisms" extension
// discussed in its future-work section.
const (
	EdgeIsomorphism = core.EdgeIsomorphism
	Homomorphism    = core.Homomorphism
	NodeIsomorphism = core.NodeIsomorphism
)

// Node is a read view of a property graph node returned in query results.
type Node = value.Node

// Relationship is a read view of a property graph relationship returned in
// query results.
type Relationship = value.Relationship

// Path is a read view of a path value returned in query results.
type Path = value.Path

// Value is a Cypher value as returned in query results.
type Value = value.Value

// SyncMode selects when the write-ahead log is fsynced; see the constants.
type SyncMode = storage.SyncMode

// WAL sync modes for Options.SyncMode / Open.
const (
	// SyncAlways fsyncs at every write-query commit (group commit coalesces
	// concurrent committers into shared fsyncs). The default: survives
	// process kills and power loss.
	SyncAlways = storage.SyncAlways
	// SyncInterval fsyncs on a background timer; a process crash loses
	// nothing, an OS crash at most the last interval of commits.
	SyncInterval = storage.SyncInterval
	// SyncNone leaves flushing to the OS entirely.
	SyncNone = storage.SyncNone
)

// DurabilityStats reports WAL and snapshot counters for a persistent graph;
// see Graph.DurabilityStats.
type DurabilityStats = storage.Stats

// MVCCStats reports the engine's version/pin counters; see Graph.MVCCStats.
type MVCCStats = graph.MVCCStats

// ReplicationStats reports a node's replication side — stream positions,
// lag, sessions; see Graph.ReplicationStats.
type ReplicationStats = replica.Stats

// ReplicationPosition locates a point in the replication stream (WAL
// generation, byte offset, entry count).
type ReplicationPosition = storage.Position

// ReadOnlyReplicaError is returned when a write query is sent to a follower
// graph; Leader carries the advertised address writes belong at. Serving
// layers typically turn it into an HTTP redirect.
type ReadOnlyReplicaError = core.ReadOnlyReplicaError

// QueryCanceledError is returned when a query is stopped by context
// cancellation or deadline expiry. Its Cause (reachable via errors.Is) is
// context.Canceled or context.DeadlineExceeded.
type QueryCanceledError = exec.CanceledError

// ResourceExhaustedError is returned when a query exceeds its memory budget.
// Only the offending query fails; the engine keeps serving.
type ResourceExhaustedError = exec.ResourceExhaustedError

// QueryPanicError is returned when query execution panicked and was
// contained at the query boundary; the engine's locks, MVCC pins and pooled
// buffers are released and it keeps serving.
type QueryPanicError = exec.PanicError

// GovernanceStats is a snapshot of the query-lifecycle counters: in-flight
// and queued queries, admission decisions, cancellations, deadline and
// budget kills, recovered panics and the peak per-query materialized bytes.
type GovernanceStats = core.GovernanceStats

// Options configures a Graph.
type Options struct {
	// Name is the graph's name (useful with multiple graphs); defaults to
	// "graph".
	Name string
	// Morphism selects the pattern-matching semantics; the default is
	// EdgeIsomorphism (standard Cypher).
	Morphism Morphism
	// MaxVarLengthDepth caps unbounded variable-length patterns when matching
	// under Homomorphism (which has no uniqueness restriction). Default 15.
	MaxVarLengthDepth int
	// Parallelism is the maximum number of workers one read-only query may
	// use: parallel-safe plans partition their scan into morsels and run the
	// filter/expand/project pipeline on a bounded worker pool. Zero or one
	// (the default) keeps every query serial; a common production setting is
	// runtime.NumCPU(). Unsafe plans (updating queries, UNION, LIMIT without
	// a sort/aggregation barrier) always fall back to the serial path.
	Parallelism int
	// MorselSize overrides the number of scan rows per parallel work unit
	// (default 1024). Mostly useful for tests and benchmarks.
	MorselSize int
	// BatchSize overrides the number of rows per batch in the vectorized
	// pipeline (default 1024, aligned with the morsel size). The batched
	// segment of eligible read plans — scan, filter, project, single-hop
	// expand, limit — pushes slot columns instead of single rows. Zero means
	// the default; a negative value disables vectorized execution and keeps
	// every query row-at-a-time (useful for tests and benchmarks).
	BatchSize int
	// DefaultTimeout bounds every query's wall-clock execution time (zero:
	// no engine-level deadline). Individual queries can override it through
	// QueryOptions.Timeout.
	DefaultTimeout time.Duration
	// MemoryBudget bounds the bytes of materialized state (sort buffers,
	// aggregation tables, DISTINCT/UNION sets, result rows) one query may
	// accumulate before it fails with *ResourceExhaustedError. Zero means
	// unlimited. Individual queries can override it through QueryOptions.
	MemoryBudget int64
	// ReplicaHeartbeatTimeout is how long a follower waits without frames or
	// heartbeats from its leader before declaring the stream stalled and
	// reconnecting. Zero means the replica package default. Only meaningful
	// for graphs opened with OpenFollower.
	ReplicaHeartbeatTimeout time.Duration
	// ReplicaHeartbeatInterval is how often this node, when serving as a
	// replication leader, re-sends its live position on idle streams. It is
	// the followers' liveness signal and must stay well under their
	// ReplicaHeartbeatTimeout. Zero means the replica package default (2s).
	// Only meaningful for graphs that call ReplicationHandler.
	ReplicaHeartbeatInterval time.Duration
	// Advertise is this node's public base URL in a replication cluster
	// (scheme://host:port); it is the node's identity in elections and the
	// redirect target for writes while it leads. Required by OpenCluster.
	Advertise string
	// Peers lists every cluster member's base URL (this node's Advertise may
	// be included). Quorums for elections and commit acknowledgement are
	// computed over the full set. Only meaningful with OpenCluster.
	Peers []string
	// ElectionTimeout is how long a cluster node tolerates leader silence
	// before campaigning; the other cluster timings (heartbeat cadence,
	// vote RPC deadlines) derive from it. Zero means the replica package
	// default (3s). Only meaningful with OpenCluster.
	ElectionTimeout time.Duration
	// LeaderLease is how stale the newest quorum of follower acknowledgements
	// may grow before an elected leader degrades writes to 503 (it can no
	// longer prove its writes commit). Zero means ElectionTimeout. Only
	// meaningful with OpenCluster.
	LeaderLease time.Duration
	// DataDir, when non-empty, makes the graph durable: mutations are
	// journaled to a write-ahead log under this directory and Checkpoint
	// writes full snapshots. Opening an existing directory recovers the
	// stored graph (latest snapshot + WAL replay). Open is the
	// error-returning way to set this; NewWithOptions panics if the
	// directory cannot be opened.
	DataDir string
	// SyncMode selects WAL fsync behaviour (default SyncAlways).
	SyncMode SyncMode
}

// Graph is a property graph together with a Cypher engine bound to it. It is
// safe for concurrent use. By default it lives purely in memory; Open (or
// Options.DataDir) attaches a write-ahead log and snapshots so it survives
// restarts.
type Graph struct {
	store  *graph.Graph
	engine *core.Engine
	// leader is non-nil once ReplicationHandler has been called: this graph
	// serves its WAL as a replication stream.
	leader *replica.Leader
	// follower is non-nil for graphs opened with OpenFollower: a background
	// tailer keeps the graph converged with its leader and the engine rejects
	// write queries.
	follower *replica.Follower
	// cluster is non-nil for graphs opened with OpenCluster: the node runs
	// leader elections and may be leader or follower at any moment.
	cluster *replica.Cluster
	// replicaHeartbeat is Options.ReplicaHeartbeatInterval, applied to the
	// leader when ReplicationHandler is called.
	replicaHeartbeat time.Duration
}

// New creates an empty in-memory graph with default options.
func New() *Graph { return NewWithOptions(Options{}) }

// NewWithOptions creates a graph with the given options. If opts.DataDir is
// set it behaves like Open but panics when the directory cannot be opened or
// recovered; use Open to handle that error.
func NewWithOptions(opts Options) *Graph {
	if opts.DataDir != "" {
		g, err := Open(opts.DataDir, opts)
		if err != nil {
			panic(fmt.Sprintf("cypher: open %s: %v", opts.DataDir, err))
		}
		return g
	}
	name := opts.Name
	if name == "" {
		name = "graph"
	}
	store := graph.NewNamed(name)
	return Wrap(store, opts)
}

// Open creates or opens a durable graph stored under dir: an existing data
// directory is recovered (latest snapshot plus write-ahead-log replay, with
// a torn final record truncated away), an empty or missing one is
// initialised. Every write query is journaled to the WAL before its commit
// returns (see Options.SyncMode), Checkpoint compacts the log into a
// snapshot, and Close must be called to release the files.
func Open(dir string, opts Options) (*Graph, error) {
	name := opts.Name
	if name == "" {
		name = "graph"
	}
	store := graph.NewNamed(name)
	durable, err := storage.Open(dir, store, storage.Options{SyncMode: opts.SyncMode})
	if err != nil {
		return nil, err
	}
	opts.DataDir = "" // recovery done; Wrap must not reopen
	g := Wrap(store, opts)
	g.engine.SetDurability(durable)
	return g, nil
}

// OpenFollower opens dir as a read-only replica of the leader at the given
// base URL (e.g. "http://10.0.0.1:7474") and starts tailing its replication
// stream in the background. An existing follower directory is recovered first
// (snapshot + local WAL replay) and streaming resumes from the recovered
// position; a fresh directory replicates from the beginning, downloading a
// whole snapshot when the leader has already truncated its early history.
//
// Read queries run against the follower's local MVCC versions and never block
// on apply. Write queries fail with *ReadOnlyReplicaError carrying the
// leader's advertised address. Close stops the tailer and releases the
// directory.
func OpenFollower(dir, leader string, opts Options) (*Graph, error) {
	name := opts.Name
	if name == "" {
		name = "graph"
	}
	store := graph.NewNamed(name)
	fstore, err := storage.OpenFollower(dir, store, storage.Options{SyncMode: opts.SyncMode})
	if err != nil {
		return nil, err
	}
	opts.DataDir = ""
	g := Wrap(store, opts)
	g.engine.SetFollowerOf(leader)
	g.follower = replica.NewFollower(replica.FollowerConfig{
		Leader:           leader,
		Engine:           g.engine,
		Store:            fstore,
		HeartbeatTimeout: opts.ReplicaHeartbeatTimeout,
	})
	g.follower.Start()
	return g, nil
}

// OpenCluster opens dir as one node of a replication cluster with automatic
// leader election and failover. Every node boots as a read-only follower;
// the cluster elects the member with the most complete log (highest WAL
// generation, then offset) by majority vote, and that node promotes to
// leader in place — no restart, no data copy. When the leader dies or is
// partitioned away, the remaining majority elects a replacement within a few
// election timeouts, and the deposed leader — should it come back — is
// fenced by its stale election term and resynchronises from the winner.
//
// opts.Advertise must be this node's public base URL and opts.Peers the full
// member list. Mount ReplicationHandler under /repl on every node; the same
// endpoint set carries the WAL stream, votes, acknowledgements and
// discovery. Writes on a non-leader fail with *ReadOnlyReplicaError: Leader
// set means redirect, empty Leader means no leader right now (mid-election
// or degraded) and the serving layer should answer 503 + Retry-After.
func OpenCluster(dir string, opts Options) (*Graph, error) {
	if opts.Advertise == "" {
		return nil, fmt.Errorf("cypher: OpenCluster requires Options.Advertise")
	}
	name := opts.Name
	if name == "" {
		name = "graph"
	}
	store := graph.NewNamed(name)
	fstore, err := storage.OpenFollower(dir, store, storage.Options{SyncMode: opts.SyncMode})
	if err != nil {
		return nil, err
	}
	opts.DataDir = ""
	g := Wrap(store, opts)
	cl, err := replica.NewCluster(replica.ClusterConfig{
		Dir:               dir,
		Advertise:         opts.Advertise,
		Peers:             opts.Peers,
		Engine:            g.engine,
		Store:             fstore,
		ElectionTimeout:   opts.ElectionTimeout,
		HeartbeatInterval: opts.ReplicaHeartbeatInterval,
		LeaderLease:       opts.LeaderLease,
	})
	if err != nil {
		fstore.Close()
		return nil, err
	}
	g.cluster = cl
	cl.Start()
	return g, nil
}

// WaitReplicated blocks until the cluster's current leader — this node —
// has a majority acknowledgement for everything written so far, so a
// success response really means the write survives any single-node failure.
// Serving layers call it after each write query. It returns immediately on
// a non-clustered graph and on single-node clusters (quorum of one), and an
// error when this node stopped leading before the quorum arrived (the write
// may or may not survive the failover).
func (g *Graph) WaitReplicated(ctx context.Context) error {
	if g.cluster == nil {
		return nil
	}
	return g.cluster.WaitCommitted(ctx, g.cluster.Position())
}

// Resync asks a clustered follower (or a standalone follower opened with
// OpenFollower) to recover via whole-snapshot catch-up, the in-place repair
// for a fail-stopped tailer — divergent local WAL, stale-term stream, apply
// failure. Serving layers expose it as POST /admin/resync.
func (g *Graph) Resync() error {
	switch {
	case g.cluster != nil:
		return g.cluster.Resync()
	case g.follower != nil:
		g.follower.Resync()
		return nil
	}
	return fmt.Errorf("cypher: resync applies to replicas")
}

// ReplicationHandler turns a durable graph into a replication leader and
// returns the handler serving the stream endpoints; mount it under /repl:
//
//	mux.Handle("/repl/", http.StripPrefix("/repl", handler))
//
// advertise is the leader's public base URL, handed to followers so they can
// redirect rejected writes here. It errors on a non-durable graph (there is
// no WAL to ship) and on a follower (chained replication is not supported).
func (g *Graph) ReplicationHandler(advertise string) (http.Handler, error) {
	if g.cluster != nil {
		// Clustered nodes serve the full endpoint set (stream + election)
		// whatever their current role; advertise was fixed at OpenCluster.
		return g.cluster.Handler(), nil
	}
	if g.follower != nil {
		return nil, fmt.Errorf("cypher: a follower cannot serve replication")
	}
	d := g.engine.Durability()
	if d == nil {
		return nil, fmt.Errorf("cypher: replication requires a durable graph (use Open)")
	}
	g.leader = replica.NewLeader(d, advertise)
	g.leader.SetHeartbeatInterval(g.replicaHeartbeat)
	return g.leader.Handler(), nil
}

// ReplicationStats reports this node's replication side; ok is false when the
// graph neither serves replication nor follows a leader.
func (g *Graph) ReplicationStats() (stats ReplicationStats, ok bool) {
	switch {
	case g.cluster != nil:
		return g.cluster.Stats(), true
	case g.follower != nil:
		return g.follower.Stats(), true
	case g.leader != nil:
		return g.leader.Stats(), true
	}
	return ReplicationStats{}, false
}

// Close flushes and syncs the write-ahead log and releases the data
// directory. On a follower it first stops the replication tailer. It is a
// no-op (nil) for in-memory graphs. The graph must not be used afterwards.
func (g *Graph) Close() error {
	if g.cluster != nil {
		// Stops elections, the tailer or leader stream, and closes whichever
		// store side is live; engine.Close then finds no durable store.
		err := g.cluster.Stop()
		if cerr := g.engine.Close(); err == nil {
			err = cerr
		}
		return err
	}
	if g.follower != nil {
		return g.follower.Stop() // closes the follower store too
	}
	return g.engine.Close()
}

// Checkpoint writes a point-in-time snapshot of a durable graph and
// truncates its write-ahead log; recovery afterwards loads the snapshot
// instead of replaying history. Readers keep running during the snapshot,
// writers wait. It is a no-op (nil) for in-memory graphs.
func (g *Graph) Checkpoint() error { return g.engine.Checkpoint() }

// MVCCStats reports the engine's snapshot-versioning counters: retained
// versions, published vs live epoch, active reader pins, and how often
// writers had to wait for readers to drain. Reads are served from pinned
// immutable versions and never block behind a write query; see
// docs/ARCHITECTURE.md, "MVCC & versioned reads".
func (g *Graph) MVCCStats() MVCCStats { return g.engine.MVCCStats() }

// DurabilityStats reports WAL/snapshot counters for a durable graph; ok is
// false for in-memory graphs.
func (g *Graph) DurabilityStats() (stats DurabilityStats, ok bool) {
	if d := g.engine.Durability(); d != nil {
		return d.Stats(), true
	}
	return DurabilityStats{}, false
}

// ImportFrom copies the contents of an internal store (as built by the
// example dataset generators) into this graph, remapping identifiers. On a
// durable graph the whole import is journaled and committed as one batch.
// Intended for seeding freshly created graphs.
func (g *Graph) ImportFrom(src *graph.Graph) error {
	return g.engine.ImportFrom(src)
}

// Wrap builds a Graph façade over an existing internal store. It is used by
// the example binaries and benchmarks that construct datasets directly.
func Wrap(store *graph.Graph, opts Options) *Graph {
	engine := core.NewEngine(store, core.Options{
		Morphism:          opts.Morphism,
		MaxVarLengthDepth: opts.MaxVarLengthDepth,
		Parallelism:       opts.Parallelism,
		MorselSize:        opts.MorselSize,
		BatchSize:         opts.BatchSize,
		DefaultTimeout:    opts.DefaultTimeout,
		MemoryBudget:      opts.MemoryBudget,
	})
	return &Graph{store: store, engine: engine, replicaHeartbeat: opts.ReplicaHeartbeatInterval}
}

// QueryOptions carries per-query governance overrides for QueryContext.
type QueryOptions struct {
	// Timeout overrides Options.DefaultTimeout for this query: >0 sets a
	// deadline, 0 inherits the graph default, <0 disables the graph-level
	// deadline (the context may still carry one).
	Timeout time.Duration
	// MemoryBudget overrides Options.MemoryBudget with the same convention.
	MemoryBudget int64
}

// Run executes a Cypher query with optional parameters (native Go values:
// nil, bool, numbers, strings, []any, map[string]any). The query is still
// governed by Options.DefaultTimeout and Options.MemoryBudget; use
// RunContext/QueryContext to attach a cancelable context or per-query
// overrides.
func (g *Graph) Run(query string, params map[string]any) (*Result, error) {
	res, err := g.engine.RunWithGoParams(query, params)
	if err != nil {
		return nil, err
	}
	return &Result{inner: res}, nil
}

// RunContext executes a query under the caller's context: cancellation and
// deadline are observed cooperatively at batch/morsel boundaries and every
// few hundred rows in serial loops, stopping all of the query's workers and
// releasing its MVCC pin and pooled buffers. A canceled query fails with
// *QueryCanceledError; other queries on the graph are unaffected.
func (g *Graph) RunContext(ctx context.Context, query string, params map[string]any) (*Result, error) {
	return g.QueryContext(ctx, query, params, QueryOptions{})
}

// QueryContext is RunContext with per-query governance overrides.
func (g *Graph) QueryContext(ctx context.Context, query string, params map[string]any, opts QueryOptions) (*Result, error) {
	res, err := g.engine.RunContextWithGoParams(ctx, query, params, core.RunOptions{
		Timeout:      opts.Timeout,
		MemoryBudget: opts.MemoryBudget,
	})
	if err != nil {
		return nil, err
	}
	return &Result{inner: res}, nil
}

// GovernanceStats reports the graph's query-lifecycle counters. The
// queue-side fields (Queued, Admitted, Rejected) are filled by serving
// layers running admission control; embedded use sees them as zero.
func (g *Graph) GovernanceStats() GovernanceStats {
	return g.engine.GovernanceStats()
}

// MustRun executes a query and panics on error; intended for tests, examples
// and data loading scripts.
func (g *Graph) MustRun(query string, params map[string]any) *Result {
	res, err := g.Run(query, params)
	if err != nil {
		panic(fmt.Sprintf("cypher: query failed: %v\nquery: %s", err, query))
	}
	return res
}

// Explain compiles the query and returns a textual description of its
// execution plan without running it.
func (g *Graph) Explain(query string) (string, error) {
	return g.engine.Explain(query)
}

// CreateIndex declares a property index on (label, property); the planner
// uses it for NodeIndexSeek scans. On a durable graph the index declaration
// is journaled like any other mutation, and the returned error reports a
// WAL commit failure (always nil for in-memory graphs; the index is applied
// in memory either way). The return may be ignored by callers that predate
// persistence.
func (g *Graph) CreateIndex(label, property string) error {
	return g.engine.CreateIndex(label, property)
}

// ParseSyncMode parses a -sync style flag value: "always", "interval",
// "none" (or "off"); the empty string defaults to SyncAlways.
func ParseSyncMode(s string) (SyncMode, error) {
	return storage.ParseSyncMode(s)
}

// Stats summarises the graph's size and the statistics the cost-based
// planner works from.
type Stats struct {
	Nodes         int
	Relationships int
	Labels        map[string]int
	Types         map[string]int
	// AverageDegree is the mean number of incident relationship endpoints
	// per node (2*|R| / |N|).
	AverageDegree float64
	// Indexes reports every property index with its selectivity counters,
	// sorted by (label, property).
	Indexes []IndexStats
}

// IndexStats reports one property index's selectivity counters, maintained
// incrementally by the mutators (and WAL replay).
type IndexStats struct {
	Label    string
	Property string
	// Entries is the number of indexed nodes.
	Entries int
	// DistinctKeys is the number of distinct indexed values; Entries over
	// DistinctKeys is the expected result size of an equality seek.
	DistinctKeys int
}

// CacheStats reports the engine's plan-cache effectiveness: cached entries,
// hits, misses, and plans invalidated by graph mutations.
type CacheStats = core.CacheStats

// PlanCacheStats returns the engine's current plan-cache counters.
func (g *Graph) PlanCacheStats() CacheStats {
	return g.engine.PlanCacheStats()
}

// Stats returns the graph's current statistics.
func (g *Graph) Stats() Stats {
	s := g.store.Stats()
	out := Stats{
		Nodes:         s.NodeCount,
		Relationships: s.RelationshipCount,
		Labels:        s.NodesByLabel,
		Types:         s.RelationshipsByType,
		AverageDegree: s.AverageDegree,
	}
	for _, is := range s.Indexes {
		out.Indexes = append(out.Indexes, IndexStats{
			Label:        is.Label,
			Property:     is.Property,
			Entries:      is.Entries,
			DistinctKeys: is.DistinctKeys,
		})
	}
	return out
}
