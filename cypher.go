// Package cypher is an embeddable, from-scratch Go implementation of the
// Cypher property graph query language as formalised in "Cypher: An Evolving
// Query Language for Property Graphs" (SIGMOD 2018).
//
// The package bundles an in-memory property graph store with native
// adjacency, a parser for the core Cypher 9 language (patterns, MATCH,
// OPTIONAL MATCH, WHERE, WITH, RETURN, UNWIND, UNION, ORDER BY / SKIP /
// LIMIT, and the updating clauses CREATE, MERGE, SET, REMOVE, DELETE), a
// cost-informed planner and a push-based execution engine implementing the
// paper's pattern-matching semantics (bag semantics and relationship
// isomorphism).
//
// Quick start:
//
//	g := cypher.New()
//	g.MustRun(`CREATE (:Person {name: 'Ada'})-[:KNOWS]->(:Person {name: 'Grace'})`, nil)
//	res, err := g.Run(`MATCH (a:Person)-[:KNOWS]->(b) RETURN a.name, b.name`, nil)
package cypher

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/value"
)

// Morphism selects the pattern-matching semantics used by a Graph.
type Morphism = core.Morphism

// Pattern-matching modes. EdgeIsomorphism is Cypher's semantics as defined in
// the paper; the other two implement the "configurable morphisms" extension
// discussed in its future-work section.
const (
	EdgeIsomorphism = core.EdgeIsomorphism
	Homomorphism    = core.Homomorphism
	NodeIsomorphism = core.NodeIsomorphism
)

// Node is a read view of a property graph node returned in query results.
type Node = value.Node

// Relationship is a read view of a property graph relationship returned in
// query results.
type Relationship = value.Relationship

// Path is a read view of a path value returned in query results.
type Path = value.Path

// Value is a Cypher value as returned in query results.
type Value = value.Value

// Options configures a Graph.
type Options struct {
	// Name is the graph's name (useful with multiple graphs); defaults to
	// "graph".
	Name string
	// Morphism selects the pattern-matching semantics; the default is
	// EdgeIsomorphism (standard Cypher).
	Morphism Morphism
	// MaxVarLengthDepth caps unbounded variable-length patterns when matching
	// under Homomorphism (which has no uniqueness restriction). Default 15.
	MaxVarLengthDepth int
	// Parallelism is the maximum number of workers one read-only query may
	// use: parallel-safe plans partition their scan into morsels and run the
	// filter/expand/project pipeline on a bounded worker pool. Zero or one
	// (the default) keeps every query serial; a common production setting is
	// runtime.NumCPU(). Unsafe plans (updating queries, UNION, LIMIT without
	// a sort/aggregation barrier) always fall back to the serial path.
	Parallelism int
	// MorselSize overrides the number of scan rows per parallel work unit
	// (default 1024). Mostly useful for tests and benchmarks.
	MorselSize int
}

// Graph is an in-memory property graph together with a Cypher engine bound to
// it. It is safe for concurrent use.
type Graph struct {
	store  *graph.Graph
	engine *core.Engine
}

// New creates an empty graph with default options.
func New() *Graph { return NewWithOptions(Options{}) }

// NewWithOptions creates an empty graph with the given options.
func NewWithOptions(opts Options) *Graph {
	name := opts.Name
	if name == "" {
		name = "graph"
	}
	store := graph.NewNamed(name)
	return Wrap(store, opts)
}

// Wrap builds a Graph façade over an existing internal store. It is used by
// the example binaries and benchmarks that construct datasets directly.
func Wrap(store *graph.Graph, opts Options) *Graph {
	engine := core.NewEngine(store, core.Options{
		Morphism:          opts.Morphism,
		MaxVarLengthDepth: opts.MaxVarLengthDepth,
		Parallelism:       opts.Parallelism,
		MorselSize:        opts.MorselSize,
	})
	return &Graph{store: store, engine: engine}
}

// Run executes a Cypher query with optional parameters (native Go values:
// nil, bool, numbers, strings, []any, map[string]any).
func (g *Graph) Run(query string, params map[string]any) (*Result, error) {
	res, err := g.engine.RunWithGoParams(query, params)
	if err != nil {
		return nil, err
	}
	return &Result{inner: res}, nil
}

// MustRun executes a query and panics on error; intended for tests, examples
// and data loading scripts.
func (g *Graph) MustRun(query string, params map[string]any) *Result {
	res, err := g.Run(query, params)
	if err != nil {
		panic(fmt.Sprintf("cypher: query failed: %v\nquery: %s", err, query))
	}
	return res
}

// Explain compiles the query and returns a textual description of its
// execution plan without running it.
func (g *Graph) Explain(query string) (string, error) {
	return g.engine.Explain(query)
}

// CreateIndex declares a property index on (label, property); the planner
// uses it for NodeIndexSeek scans.
func (g *Graph) CreateIndex(label, property string) {
	g.store.CreateIndex(label, property)
}

// Stats summarises the graph's size.
type Stats struct {
	Nodes         int
	Relationships int
	Labels        map[string]int
	Types         map[string]int
}

// CacheStats reports the engine's plan-cache effectiveness: cached entries,
// hits, misses, and plans invalidated by graph mutations.
type CacheStats = core.CacheStats

// PlanCacheStats returns the engine's current plan-cache counters.
func (g *Graph) PlanCacheStats() CacheStats {
	return g.engine.PlanCacheStats()
}

// Stats returns the graph's current statistics.
func (g *Graph) Stats() Stats {
	s := g.store.Stats()
	return Stats{
		Nodes:         s.NodeCount,
		Relationships: s.RelationshipCount,
		Labels:        s.NodesByLabel,
		Types:         s.RelationshipsByType,
	}
}
