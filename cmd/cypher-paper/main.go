// Command cypher-paper regenerates the figures, tables and examples of
// "Cypher: An Evolving Query Language for Property Graphs" (SIGMOD 2018)
// from this implementation. Running it without flags prints every artifact;
// -artifact selects a single one (see -list).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	cypher "repro"
	"repro/internal/datasets"
)

type artifact struct {
	id    string
	title string
	run   func()
}

func main() {
	var (
		which = flag.String("artifact", "", "artifact id to print (default: all)")
		list  = flag.Bool("list", false, "list artifact ids and exit")
	)
	flag.Parse()

	artifacts := buildArtifacts()
	if *list {
		for _, a := range artifacts {
			fmt.Printf("%-12s %s\n", a.id, a.title)
		}
		return
	}
	if *which != "" {
		for _, a := range artifacts {
			if a.id == *which {
				printArtifact(a)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "unknown artifact %q (use -list)\n", *which)
		os.Exit(1)
	}
	for _, a := range artifacts {
		printArtifact(a)
	}
}

func printArtifact(a artifact) {
	fmt.Printf("================================================================\n")
	fmt.Printf("%s — %s\n", a.id, a.title)
	fmt.Printf("================================================================\n")
	a.run()
	fmt.Println()
}

func citationsGraph() *cypher.Graph {
	store, _ := datasets.Citations()
	return cypher.Wrap(store, cypher.Options{})
}

func teachersGraph() *cypher.Graph {
	store, _ := datasets.Teachers()
	return cypher.Wrap(store, cypher.Options{})
}

func show(g *cypher.Graph, query string) {
	fmt.Println("cypher>", query)
	res, err := g.Run(query, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(res)
}

func buildArtifacts() []artifact {
	arts := []artifact{
		{"figure1", "The example data graph of Figure 1", func() {
			store, nodes := datasets.Citations()
			fmt.Println(store.String())
			var ids []string
			for id := range nodes {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				n := nodes[id]
				fmt.Printf("  %-4s labels=%v properties=%v\n", id, n.Labels(), n.PropertyKeys())
			}
			g := cypher.Wrap(store, cypher.Options{})
			show(g, "MATCH (a)-[r]->(b) RETURN id(a) AS src, type(r) AS type, id(b) AS tgt ORDER BY src, type, tgt")
		}},
		{"figure2a", "Figure 2(a): variable bindings after OPTIONAL MATCH", func() {
			show(citationsGraph(), `MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) RETURN r.name AS r, s.name AS s`)
		}},
		{"figure2b", "Figure 2(b): variable bindings after WITH r, count(s)", func() {
			show(citationsGraph(), `MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) WITH r, count(s) AS studentsSupervised RETURN r.name AS r, studentsSupervised`)
		}},
		{"section3-line4", "Section 3: bindings after MATCH (r)-[:AUTHORS]->(p1)", func() {
			show(citationsGraph(), `MATCH (r:Researcher)
				OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
				WITH r, count(s) AS studentsSupervised
				MATCH (r)-[:AUTHORS]->(p1:Publication)
				RETURN r.name AS r, studentsSupervised, p1.acmid AS p1`)
		}},
		{"section3-line5", "Section 3: bindings after OPTIONAL MATCH (p1)<-[:CITES*]-(p2) — note the duplicate rows", func() {
			show(citationsGraph(), `MATCH (r:Researcher)
				OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
				WITH r, count(s) AS studentsSupervised
				MATCH (r)-[:AUTHORS]->(p1:Publication)
				OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
				RETURN r.name AS r, studentsSupervised, p1.acmid AS p1, p2.acmid AS p2`)
		}},
		{"section3", "Section 3: the full worked example (final result table)", func() {
			show(citationsGraph(), `MATCH (r:Researcher)
				OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
				WITH r, count(s) AS studentsSupervised
				MATCH (r)-[:AUTHORS]->(p1:Publication)
				OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
				RETURN r.name, studentsSupervised, count(DISTINCT p2) AS citedCount`)
		}},
		{"industry1", "Section 3: data-center dependency query", func() {
			store := datasets.DataCenter(datasets.DataCenterConfig{Services: 100, MaxDeps: 3, Seed: 7})
			g := cypher.Wrap(store, cypher.Options{})
			show(g, `MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
				RETURN svc.name AS svc, count(DISTINCT dep) AS dependents
				ORDER BY dependents DESC LIMIT 1`)
		}},
		{"industry2", "Section 3: fraud-ring query", func() {
			store := datasets.FraudNetwork(datasets.FraudConfig{AccountHolders: 200, SharingFraction: 0.1, Seed: 7})
			g := cypher.Wrap(store, cypher.Options{})
			show(g, `MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo)
				WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address
				WITH pInfo, collect(accHolder.uniqueId) AS accountHolders, count(*) AS fraudRingCount
				WHERE fraudRingCount > 1
				RETURN accountHolders, labels(pInfo) AS personalInformation, fraudRingCount
				ORDER BY fraudRingCount DESC LIMIT 5`)
		}},
		{"figure4", "Figure 4: the teachers/students graph", func() {
			store, _ := datasets.Teachers()
			g := cypher.Wrap(store, cypher.Options{})
			fmt.Println(store.String())
			show(g, "MATCH (a)-[r:KNOWS]->(b) RETURN a.name AS from, b.name AS to, r.since AS since ORDER BY from")
		}},
		{"example4.2", "Example 4.2: node pattern satisfaction", func() {
			g := teachersGraph()
			show(g, "MATCH (x:Teacher) RETURN x.name AS x ORDER BY x")
			show(g, "MATCH (y) RETURN y.name AS y ORDER BY y")
		}},
		{"example4.3", "Example 4.3: rigid pattern (x:Teacher)-[:KNOWS*2]->(y)", func() {
			show(teachersGraph(), "MATCH (x:Teacher)-[:KNOWS*2]->(y) RETURN x.name AS x, y.name AS y")
		}},
		{"example4.4", "Example 4.4: variable-length pattern with named middle node", func() {
			show(teachersGraph(), "MATCH (x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher) RETURN x.name AS x, z.name AS z, y.name AS y")
		}},
		{"example4.5", "Example 4.5: bag semantics — two copies of the same assignment", func() {
			show(teachersGraph(), "MATCH (x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher) RETURN x.name AS x, y.name AS y")
		}},
		{"example4.6", "Example 4.6: MATCH (x)-[:KNOWS*]->(y) over a driving table", func() {
			show(teachersGraph(), "MATCH (x) WHERE x.name IN ['n1', 'n3'] MATCH (x)-[:KNOWS*]->(y) RETURN x.name AS x, y.name AS y")
		}},
		{"complexity", "Section 4.2: the self-loop graph — exactly two matches", func() {
			store := datasets.SelfLoop()
			g := cypher.Wrap(store, cypher.Options{})
			show(g, "MATCH (x)-[*0..]->(x) RETURN count(*) AS matches")
		}},
	}
	return arts
}
