// Command cypher-bench runs the workload benchmarks outside `go test` and
// prints CSV so that results can be plotted or diffed across runs. The same
// workloads back the testing.B benchmarks in bench_test.go (experiments
// B1-B9 of DESIGN.md).
//
// Two axes of parallelism are reported independently:
//
//   - single-query latency (the default, and explicitly -mode latency): each
//     workload query runs -iterations times on one client, with the engine's
//     intra-query worker budget set by -parallelism — this shows how much
//     morsel-driven execution shortens one big read;
//   - cross-query throughput (-clients N > 1, or -mode throughput): N
//     clients hammer the same graph concurrently and the CSV reports
//     aggregate queries/second; combined with -parallelism this shows how
//     the two axes trade off against each other on fixed hardware.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	cypher "repro"
	"repro/internal/datasets"
	"repro/internal/storage"
)

type workload struct {
	name  string
	param string
	setup func(opts cypher.Options) *cypher.Graph
	query string
}

func main() {
	var (
		iterations  = flag.Int("iterations", 3, "measured iterations per workload (per client when -clients > 1)")
		filter      = flag.String("workload", "", "run only workloads whose name contains this substring")
		clients     = flag.Int("clients", 1, "concurrent clients; > 1 switches to throughput mode")
		parallelism = flag.Int("parallelism", 1, "workers per read query (morsel-driven; 1 = serial, 0 = all CPUs)")
		mode        = flag.String("mode", "", "latency or throughput (default: latency, or throughput when -clients > 1)")
		waldump     = flag.String("waldump", "", "dump a WAL file, snapshot file or data directory and exit (debugging aid)")
	)
	flag.Parse()

	if *waldump != "" {
		if err := storage.Dump(os.Stdout, *waldump); err != nil {
			fmt.Fprintln(os.Stderr, "waldump:", err)
			os.Exit(1)
		}
		return
	}

	if *parallelism <= 0 {
		*parallelism = runtime.NumCPU()
	}
	opts := cypher.Options{Parallelism: *parallelism}
	throughput := *clients > 1
	switch *mode {
	case "":
	case "latency":
		throughput = false
	case "throughput":
		throughput = true
		if *clients < 2 {
			*clients = runtime.NumCPU()
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want latency or throughput)\n", *mode)
		os.Exit(2)
	}

	workloads := buildWorkloads()
	if throughput {
		runConcurrent(workloads, *filter, *clients, *iterations, opts)
		return
	}
	fmt.Println("workload,parameter,parallelism,iteration,rows,seconds")
	for _, w := range workloads {
		if *filter != "" && !contains(w.name, *filter) {
			continue
		}
		g := w.setup(opts)
		for i := 0; i < *iterations; i++ {
			start := time.Now()
			res, err := g.Run(w.query, nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "workload %s failed: %v\n", w.name, err)
				os.Exit(1)
			}
			elapsed := time.Since(start).Seconds()
			fmt.Printf("%s,%s,%d,%d,%d,%.6f\n", w.name, w.param, res.Parallelism(), i, res.Len(), elapsed)
		}
	}
}

// runConcurrent measures read throughput with many clients hammering the same
// graph: each client runs the workload query `iterations` times, and the CSV
// reports aggregate queries/second. Because every workload query here is
// read-only, the engine executes the clients in parallel under its shared
// lock and serves repeats from the plan cache; each individual query may
// additionally use the configured intra-query parallelism.
func runConcurrent(workloads []workload, filter string, clients, iterations int, opts cypher.Options) {
	fmt.Println("workload,parameter,parallelism,clients,queries,seconds,qps")
	for _, w := range workloads {
		if filter != "" && !contains(w.name, filter) {
			continue
		}
		g := w.setup(opts)
		// Warm the plan cache once so the measurement reflects steady state.
		if _, err := g.Run(w.query, nil); err != nil {
			fmt.Fprintf(os.Stderr, "workload %s failed: %v\n", w.name, err)
			os.Exit(1)
		}
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iterations; i++ {
					if _, err := g.Run(w.query, nil); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		close(errs)
		if err := <-errs; err != nil {
			fmt.Fprintf(os.Stderr, "workload %s failed: %v\n", w.name, err)
			os.Exit(1)
		}
		total := clients * iterations
		fmt.Printf("%s,%s,%d,%d,%d,%.6f,%.1f\n",
			w.name, w.param, opts.Parallelism, clients, total, elapsed, float64(total)/elapsed)
	}
}

func contains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func social(people, friends int) func(opts cypher.Options) *cypher.Graph {
	return func(opts cypher.Options) *cypher.Graph {
		return cypher.Wrap(datasets.SocialNetwork(datasets.SocialConfig{People: people, FriendsEach: friends, Seed: 42}), opts)
	}
}

func buildWorkloads() []workload {
	var out []workload
	for _, size := range []int{1000, 10000} {
		out = append(out, workload{
			name: "expand", param: fmt.Sprintf("people=%d", size), setup: social(size, 8),
			query: "MATCH (a:Person {name: 'person-17'})-[:KNOWS]->(b) RETURN count(b) AS c",
		})
	}
	for _, depth := range []int{1, 2, 3} {
		out = append(out, workload{
			name: "varlength", param: fmt.Sprintf("depth=%d", depth), setup: social(2000, 4),
			query: fmt.Sprintf("MATCH (a:Person {name: 'person-17'})-[:KNOWS*1..%d]->(c) RETURN count(c) AS c", depth),
		})
	}
	out = append(out, workload{
		name: "aggregate", param: "people=20000", setup: social(20000, 2),
		query: "MATCH (p:Person) RETURN p.age AS age, count(*) AS c",
	})
	out = append(out, workload{
		name: "scanfilter", param: "people=20000", setup: social(20000, 2),
		query: "MATCH (p:Person) WHERE p.age >= 30 AND p.age < 40 RETURN p.name AS name, p.age AS age ORDER BY age, name",
	})
	for _, services := range []int{100, 500, 2000} {
		svc := services
		out = append(out, workload{
			name: "datacenter", param: fmt.Sprintf("services=%d", svc),
			setup: func(opts cypher.Options) *cypher.Graph {
				return cypher.Wrap(datasets.DataCenter(datasets.DataCenterConfig{Services: svc, MaxDeps: 3, Seed: 5}), opts)
			},
			query: "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service) RETURN svc, count(DISTINCT dep) AS dependents ORDER BY dependents DESC LIMIT 1",
		})
	}
	for _, holders := range []int{200, 1000, 5000} {
		h := holders
		out = append(out, workload{
			name: "fraud", param: fmt.Sprintf("holders=%d", h),
			setup: func(opts cypher.Options) *cypher.Graph {
				return cypher.Wrap(datasets.FraudNetwork(datasets.FraudConfig{AccountHolders: h, SharingFraction: 0.15, Seed: 5}), opts)
			},
			query: `MATCH (a:AccountHolder)-[:HAS]->(p)
				WHERE p:SSN OR p:PhoneNumber OR p:Address
				WITH p, collect(a.uniqueId) AS holders, count(*) AS c
				WHERE c > 1
				RETURN holders, labels(p), c`,
		})
	}
	out = append(out, workload{
		name: "section3", param: "researchers=200",
		setup: func(opts cypher.Options) *cypher.Graph {
			return cypher.Wrap(datasets.CitationNetwork(datasets.CitationConfig{Researchers: 200, PublicationsPerAuthor: 3, StudentsPerResearcher: 2, CitationsPerPaper: 2, Seed: 2}), opts)
		},
		query: `MATCH (r:Researcher)
			OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
			WITH r, count(s) AS studentsSupervised
			MATCH (r)-[:AUTHORS]->(p1:Publication)
			OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
			RETURN r.name, studentsSupervised, count(DISTINCT p2) AS citedCount`,
	})
	return out
}
