// Command cypher-bench runs the workload benchmarks outside `go test` and
// prints CSV so that results can be plotted or diffed across runs. The same
// workloads back the testing.B benchmarks in bench_test.go (experiments
// B1-B9 of DESIGN.md).
//
// Two axes of parallelism are reported independently:
//
//   - query latency (the default, and explicitly -mode latency): each
//     workload query runs -iterations times per client and the CSV reports
//     the p50/p95/p99 of the per-query latency distribution, with the
//     engine's intra-query worker budget set by -parallelism — with
//     -clients > 1 the same report shows how concurrency moves the tail;
//   - cross-query throughput (-mode throughput, or -clients N > 1 without
//     an explicit -mode): N clients hammer the same graph concurrently and
//     the CSV reports aggregate queries/second.
//
// -cpuprofile / -memprofile write pprof profiles covering the measured
// workloads, so batch-kernel wins are attributable outside `go test`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	cypher "repro"
	"repro/internal/datasets"
	"repro/internal/storage"
)

type workload struct {
	name  string
	param string
	setup func(opts cypher.Options) *cypher.Graph
	query string
}

func main() {
	var (
		iterations  = flag.Int("iterations", 3, "measured iterations per workload (per client when -clients > 1)")
		filter      = flag.String("workload", "", "run only workloads whose name contains this substring")
		clients     = flag.Int("clients", 1, "concurrent clients; > 1 switches to throughput mode")
		parallelism = flag.Int("parallelism", 1, "workers per read query (morsel-driven; 1 = serial, 0 = all CPUs)")
		batchSize   = flag.Int("batch-size", 0, "rows per batch in the vectorized pipeline (0 = default 1024, negative = row-at-a-time)")
		mode        = flag.String("mode", "", "latency or throughput (default: latency, or throughput when -clients > 1)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile covering the measured workloads to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile after the measured workloads to this file")
		waldump     = flag.String("waldump", "", "dump a WAL file, snapshot file or data directory and exit (debugging aid)")

		queryTimeout = flag.Duration("query-timeout", 0, "wall-clock cap per query (0 = unbounded); measures governance overhead when set")
		memoryBudget = flag.Int64("memory-budget", 0, "bytes of materialized state one query may hold (0 = unlimited)")
	)
	flag.Parse()

	if *waldump != "" {
		if err := storage.Dump(os.Stdout, *waldump); err != nil {
			fmt.Fprintln(os.Stderr, "waldump:", err)
			os.Exit(1)
		}
		return
	}

	if *parallelism <= 0 {
		*parallelism = runtime.NumCPU()
	}
	opts := cypher.Options{
		Parallelism:    *parallelism,
		BatchSize:      *batchSize,
		DefaultTimeout: *queryTimeout,
		MemoryBudget:   *memoryBudget,
	}
	throughput := *clients > 1
	switch *mode {
	case "":
	case "latency":
		throughput = false
	case "throughput":
		throughput = true
		if *clients < 2 {
			*clients = runtime.NumCPU()
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want latency or throughput)\n", *mode)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
	}()

	workloads := buildWorkloads()
	if throughput {
		runConcurrent(workloads, *filter, *clients, *iterations, opts)
		return
	}
	runLatency(workloads, *filter, *clients, *iterations, opts)
}

// runLatency measures the per-query latency distribution: each of `clients`
// concurrent clients runs every workload query `iterations` times and the
// CSV reports p50/p95/p99 over all samples — the tail is where batching and
// contention show up, so the median alone is not enough.
func runLatency(workloads []workload, filter string, clients, iterations int, opts cypher.Options) {
	if clients < 1 {
		clients = 1
	}
	fmt.Println("workload,parameter,parallelism,clients,samples,rows,p50_ms,p95_ms,p99_ms")
	for _, w := range workloads {
		if filter != "" && !contains(w.name, filter) {
			continue
		}
		g := w.setup(opts)
		// Warm the plan cache once so the measurement reflects steady state.
		warm, err := g.Run(w.query, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workload %s failed: %v\n", w.name, err)
			os.Exit(1)
		}
		rows := warm.Len()
		reported := warm.Parallelism()
		samples := make([]float64, clients*iterations)
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < iterations; i++ {
					start := time.Now()
					if _, err := g.Run(w.query, nil); err != nil {
						errs <- err
						return
					}
					samples[c*iterations+i] = float64(time.Since(start).Microseconds()) / 1000
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			fmt.Fprintf(os.Stderr, "workload %s failed: %v\n", w.name, err)
			os.Exit(1)
		}
		sort.Float64s(samples)
		fmt.Printf("%s,%s,%d,%d,%d,%d,%.3f,%.3f,%.3f\n",
			w.name, w.param, reported, clients, len(samples), rows,
			percentile(samples, 0.50), percentile(samples, 0.95), percentile(samples, 0.99))
	}
}

// percentile returns the nearest-rank percentile of an ascending-sorted
// sample set.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// runConcurrent measures read throughput with many clients hammering the same
// graph: each client runs the workload query `iterations` times, and the CSV
// reports aggregate queries/second. Because every workload query here is
// read-only, the engine executes the clients in parallel under its shared
// lock and serves repeats from the plan cache; each individual query may
// additionally use the configured intra-query parallelism.
func runConcurrent(workloads []workload, filter string, clients, iterations int, opts cypher.Options) {
	fmt.Println("workload,parameter,parallelism,clients,queries,seconds,qps")
	for _, w := range workloads {
		if filter != "" && !contains(w.name, filter) {
			continue
		}
		g := w.setup(opts)
		// Warm the plan cache once so the measurement reflects steady state.
		if _, err := g.Run(w.query, nil); err != nil {
			fmt.Fprintf(os.Stderr, "workload %s failed: %v\n", w.name, err)
			os.Exit(1)
		}
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iterations; i++ {
					if _, err := g.Run(w.query, nil); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		close(errs)
		if err := <-errs; err != nil {
			fmt.Fprintf(os.Stderr, "workload %s failed: %v\n", w.name, err)
			os.Exit(1)
		}
		total := clients * iterations
		fmt.Printf("%s,%s,%d,%d,%d,%.6f,%.1f\n",
			w.name, w.param, opts.Parallelism, clients, total, elapsed, float64(total)/elapsed)
	}
}

func contains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func social(people, friends int) func(opts cypher.Options) *cypher.Graph {
	return func(opts cypher.Options) *cypher.Graph {
		return cypher.Wrap(datasets.SocialNetwork(datasets.SocialConfig{People: people, FriendsEach: friends, Seed: 42}), opts)
	}
}

func buildWorkloads() []workload {
	var out []workload
	for _, size := range []int{1000, 10000} {
		out = append(out, workload{
			name: "expand", param: fmt.Sprintf("people=%d", size), setup: social(size, 8),
			query: "MATCH (a:Person {name: 'person-17'})-[:KNOWS]->(b) RETURN count(b) AS c",
		})
	}
	for _, depth := range []int{1, 2, 3} {
		out = append(out, workload{
			name: "varlength", param: fmt.Sprintf("depth=%d", depth), setup: social(2000, 4),
			query: fmt.Sprintf("MATCH (a:Person {name: 'person-17'})-[:KNOWS*1..%d]->(c) RETURN count(c) AS c", depth),
		})
	}
	out = append(out, workload{
		name: "aggregate", param: "people=20000", setup: social(20000, 2),
		query: "MATCH (p:Person) RETURN p.age AS age, count(*) AS c",
	})
	out = append(out, workload{
		name: "scanfilter", param: "people=20000", setup: social(20000, 2),
		query: "MATCH (p:Person) WHERE p.age >= 30 AND p.age < 40 RETURN p.name AS name, p.age AS age ORDER BY age, name",
	})
	for _, services := range []int{100, 500, 2000} {
		svc := services
		out = append(out, workload{
			name: "datacenter", param: fmt.Sprintf("services=%d", svc),
			setup: func(opts cypher.Options) *cypher.Graph {
				return cypher.Wrap(datasets.DataCenter(datasets.DataCenterConfig{Services: svc, MaxDeps: 3, Seed: 5}), opts)
			},
			query: "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service) RETURN svc, count(DISTINCT dep) AS dependents ORDER BY dependents DESC LIMIT 1",
		})
	}
	for _, holders := range []int{200, 1000, 5000} {
		h := holders
		out = append(out, workload{
			name: "fraud", param: fmt.Sprintf("holders=%d", h),
			setup: func(opts cypher.Options) *cypher.Graph {
				return cypher.Wrap(datasets.FraudNetwork(datasets.FraudConfig{AccountHolders: h, SharingFraction: 0.15, Seed: 5}), opts)
			},
			query: `MATCH (a:AccountHolder)-[:HAS]->(p)
				WHERE p:SSN OR p:PhoneNumber OR p:Address
				WITH p, collect(a.uniqueId) AS holders, count(*) AS c
				WHERE c > 1
				RETURN holders, labels(p), c`,
		})
	}
	out = append(out, workload{
		name: "section3", param: "researchers=200",
		setup: func(opts cypher.Options) *cypher.Graph {
			return cypher.Wrap(datasets.CitationNetwork(datasets.CitationConfig{Researchers: 200, PublicationsPerAuthor: 3, StudentsPerResearcher: 2, CitationsPerPaper: 2, Seed: 2}), opts)
		},
		query: `MATCH (r:Researcher)
			OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
			WITH r, count(s) AS studentsSupervised
			MATCH (r)-[:AUTHORS]->(p1:Publication)
			OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
			RETURN r.name, studentsSupervised, count(DISTINCT p2) AS citedCount`,
	})
	return out
}
