// Command cypher-benchcmp converts `go test -bench` output into a
// benchstat-style JSON summary and optionally compares it against a
// committed baseline, failing when any benchmark's median ns/op regresses
// beyond the tolerance. CI uses it to record the repo's performance
// trajectory (BENCH_*.json artifacts) and to gate pull requests.
//
//	go test -bench=. -benchmem -run='^$' -count=3 | tee bench.txt
//	cypher-benchcmp -in bench.txt -out BENCH_PR2.json -baseline BENCH_BASELINE.json -tolerance 0.20
//
// Wall-clock numbers are only comparable on similar hardware: unless
// -strict is set, a baseline recorded on a different CPU model downgrades
// the ns/op gate to a warning (the JSON is still written, so the artifact
// trail continues). The allocs/op gate is machine-independent and stays
// armed regardless of CPU model.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark aggregates the samples of one benchmark across -count runs.
type Benchmark struct {
	Samples           int       `json:"samples"`
	NsPerOp           []float64 `json:"nsPerOp"`
	MedianNsPerOp     float64   `json:"medianNsPerOp"`
	BPerOp            []float64 `json:"bPerOp,omitempty"`
	MedianBPerOp      float64   `json:"medianBPerOp,omitempty"`
	AllocsPerOp       []float64 `json:"allocsPerOp,omitempty"`
	MedianAllocsPerOp float64   `json:"medianAllocsPerOp,omitempty"`
}

// Summary is the JSON document: environment plus per-benchmark statistics.
type Summary struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// GOMAXPROCS is recovered from the benchmark-name suffix (1 when the
	// names carry none). Wall-clock medians from different core counts are
	// not comparable — parallel benchmarks speed up with cores — so the
	// ns/op gate requires it to match, like the CPU model.
	GOMAXPROCS int                   `json:"gomaxprocs,omitempty"`
	Benchmarks map[string]*Benchmark `json:"benchmarks"`
}

// gomaxprocsSuffix strips the "-8" style GOMAXPROCS suffix go test appends
// to benchmark names, so runs from machines with different core counts
// compare under the same key.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func parse(r io.Reader) (*Summary, error) {
	sum := &Summary{Benchmarks: map[string]*Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			sum.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			sum.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			sum.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			fields := strings.Fields(line)
			if len(fields) < 4 {
				continue
			}
			name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
			if sum.GOMAXPROCS == 0 {
				sum.GOMAXPROCS = 1
				if suffix := gomaxprocsSuffix.FindString(fields[0]); suffix != "" {
					if n, err := strconv.Atoi(suffix[1:]); err == nil {
						sum.GOMAXPROCS = n
					}
				}
			}
			b := sum.Benchmarks[name]
			if b == nil {
				b = &Benchmark{}
				sum.Benchmarks[name] = b
			}
			for i := 2; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					continue
				}
				switch fields[i+1] {
				case "ns/op":
					b.NsPerOp = append(b.NsPerOp, v)
					b.Samples = len(b.NsPerOp)
				case "B/op":
					b.BPerOp = append(b.BPerOp, v)
				case "allocs/op":
					b.AllocsPerOp = append(b.AllocsPerOp, v)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, b := range sum.Benchmarks {
		b.MedianNsPerOp = median(b.NsPerOp)
		b.MedianBPerOp = median(b.BPerOp)
		b.MedianAllocsPerOp = median(b.AllocsPerOp)
	}
	if len(sum.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return sum, nil
}

func main() {
	var (
		in        = flag.String("in", "-", "benchmark output to read ('-' for stdin)")
		out       = flag.String("out", "", "write the JSON summary to this file")
		baseline  = flag.String("baseline", "", "baseline JSON to compare against")
		tolerance = flag.Float64("tolerance", 0.20, "allowed median ns/op regression (0.20 = +20%)")
		allocTol  = flag.Float64("alloc-tolerance", 0.30, "allowed median allocs/op regression; enforced across CPU models")
		strict    = flag.Bool("strict", false, "fail on ns/op regression even when the baseline was recorded on a different CPU model")
		// Improvement gate: PRs that promise an allocation win commit to it.
		// Allocation counts are deterministic and machine-independent, so
		// this gate is enforced regardless of CPU model.
		requireAllocDrop = flag.Float64("require-alloc-drop", 0, "require median allocs/op of benchmarks matching -require-match to have dropped by at least this fraction vs the baseline (0.5 = halved); 0 disables")
		requireMatch     = flag.String("require-match", "", "regexp selecting the benchmarks the -require-alloc-drop gate applies to")
	)
	// Within-run speedup gate: both benchmarks come from the same run on the
	// same CPU, so (unlike baseline comparisons) the ns/op ratio is always
	// meaningful. Repeatable.
	var requireRatios []string
	flag.Func("require-ratio", "'fast,slow,minFactor': require median ns/op of benchmark 'slow' to be at least minFactor x that of 'fast' in THIS run (repeatable)", func(s string) error {
		requireRatios = append(requireRatios, s)
		return nil
	})
	// The inverse gate: an upper bound instead of a lower one. Used by the
	// MVCC job to assert read latency under a concurrent writer stays within
	// a small factor of idle read latency (readers never block on writers).
	var requireMaxRatios []string
	flag.Func("require-max-ratio", "'base,other,maxFactor': require median ns/op of benchmark 'other' to be at most maxFactor x that of 'base' in THIS run (repeatable)", func(s string) error {
		requireMaxRatios = append(requireMaxRatios, s)
		return nil
	})
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		src = f
	}
	cur, err := parse(src)
	if err != nil {
		fatal("parse benchmark output: %v", err)
	}

	if *out != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(cur.Benchmarks))
	}

	if len(requireRatios) > 0 {
		failed := 0
		for _, spec := range requireRatios {
			parts := strings.Split(spec, ",")
			if len(parts) != 3 {
				fatal("bad -require-ratio %q: want 'fast,slow,minFactor'", spec)
			}
			factor, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil || factor <= 0 {
				fatal("bad -require-ratio factor in %q", spec)
			}
			fastName, slowName := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
			fast, fok := cur.Benchmarks[fastName]
			slow, sok := cur.Benchmarks[slowName]
			if !fok || !sok {
				fatal("-require-ratio %q: benchmark not found in this run (have %d benchmarks)", spec, len(cur.Benchmarks))
			}
			if fast.MedianNsPerOp <= 0 {
				fatal("-require-ratio %q: %s has no ns/op samples", spec, fastName)
			}
			ratio := slow.MedianNsPerOp / fast.MedianNsPerOp
			status := "ok"
			if ratio < factor {
				failed++
				status = "INSUFFICIENT"
			}
			fmt.Printf("ratio %s vs %s: %.1fx (need >= %.1fx, %s)\n", fastName, slowName, ratio, factor, status)
		}
		if failed > 0 {
			fatal("%d -require-ratio gate(s) failed", failed)
		}
	}

	if len(requireMaxRatios) > 0 {
		failed := 0
		for _, spec := range requireMaxRatios {
			parts := strings.Split(spec, ",")
			if len(parts) != 3 {
				fatal("bad -require-max-ratio %q: want 'base,other,maxFactor'", spec)
			}
			factor, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil || factor <= 0 {
				fatal("bad -require-max-ratio factor in %q", spec)
			}
			baseName, otherName := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
			baseBench, bok := cur.Benchmarks[baseName]
			other, ook := cur.Benchmarks[otherName]
			if !bok || !ook {
				fatal("-require-max-ratio %q: benchmark not found in this run (have %d benchmarks)", spec, len(cur.Benchmarks))
			}
			if baseBench.MedianNsPerOp <= 0 {
				fatal("-require-max-ratio %q: %s has no ns/op samples", spec, baseName)
			}
			ratio := other.MedianNsPerOp / baseBench.MedianNsPerOp
			status := "ok"
			if ratio > factor {
				failed++
				status = "EXCEEDED"
			}
			fmt.Printf("max-ratio %s vs %s: %.2fx (need <= %.2fx, %s)\n", baseName, otherName, ratio, factor, status)
		}
		if failed > 0 {
			fatal("%d -require-max-ratio gate(s) failed", failed)
		}
	}

	if *baseline == "" {
		return
	}
	baseData, err := os.ReadFile(*baseline)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var base Summary
	if err := json.Unmarshal(baseData, &base); err != nil {
		fatal("parse baseline %s: %v", *baseline, err)
	}

	sameEnv := base.CPU == cur.CPU && base.GOMAXPROCS == cur.GOMAXPROCS
	gate := *strict || sameEnv
	var names []string
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatal("baseline and current run share no benchmarks")
	}

	fmt.Printf("%-60s %14s %14s %8s %10s\n", "benchmark", "base ns/op", "new ns/op", "delta", "allocs Δ")
	nsRegressions, allocRegressions := 0, 0
	for _, name := range names {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		if b.MedianNsPerOp == 0 {
			continue
		}
		delta := c.MedianNsPerOp/b.MedianNsPerOp - 1
		marker := ""
		if delta > *tolerance {
			nsRegressions++
			marker = "  << REGRESSION"
		}
		allocCol := ""
		if b.MedianAllocsPerOp > 0 && c.MedianAllocsPerOp > 0 {
			allocDelta := c.MedianAllocsPerOp/b.MedianAllocsPerOp - 1
			allocCol = fmt.Sprintf("%+9.1f%%", allocDelta*100)
			if allocDelta > *allocTol {
				allocRegressions++
				marker = "  << ALLOC REGRESSION"
			}
		}
		fmt.Printf("%-60s %14.0f %14.0f %+7.1f%% %10s%s\n",
			name, b.MedianNsPerOp, c.MedianNsPerOp, delta*100, allocCol, marker)
	}
	// allocs/op does not depend on CPU speed, so that gate is always armed;
	// the ns/op gate only fires when the numbers are comparable.
	if allocRegressions > 0 {
		fatal("%d benchmark(s) regressed allocs/op more than %.0f%% against %s", allocRegressions, *allocTol*100, *baseline)
	}
	if *requireAllocDrop > 0 {
		if *requireMatch == "" {
			fatal("-require-alloc-drop needs -require-match")
		}
		re, err := regexp.Compile(*requireMatch)
		if err != nil {
			fatal("bad -require-match: %v", err)
		}
		gated, failed := 0, 0
		for _, name := range names {
			if !re.MatchString(name) {
				continue
			}
			b, c := base.Benchmarks[name], cur.Benchmarks[name]
			if b.MedianAllocsPerOp <= 0 {
				continue
			}
			gated++
			drop := 1 - c.MedianAllocsPerOp/b.MedianAllocsPerOp
			status := "ok"
			if drop < *requireAllocDrop {
				failed++
				status = "INSUFFICIENT"
			}
			fmt.Printf("alloc-drop %-56s %9.0f -> %9.0f  %5.1f%% (%s)\n",
				name, b.MedianAllocsPerOp, c.MedianAllocsPerOp, drop*100, status)
		}
		if gated == 0 {
			fatal("-require-match %q selected no benchmarks shared with the baseline", *requireMatch)
		}
		if failed > 0 {
			fatal("%d benchmark(s) did not drop median allocs/op by at least %.0f%% against %s", failed, *requireAllocDrop*100, *baseline)
		}
		fmt.Printf("OK: %d benchmark(s) dropped median allocs/op by at least %.0f%%\n", gated, *requireAllocDrop*100)
	}
	switch {
	case nsRegressions == 0:
		fmt.Printf("OK: no benchmark regressed more than %.0f%% against %s\n", *tolerance*100, *baseline)
	case gate:
		fatal("%d benchmark(s) regressed more than %.0f%% against %s", nsRegressions, *tolerance*100, *baseline)
	default:
		fmt.Printf("WARNING: %d benchmark(s) regressed ns/op more than %.0f%%, but the baseline environment (%q, GOMAXPROCS %d) differs from this machine (%q, GOMAXPROCS %d); not failing the wall-clock gate (use -strict to enforce)\n",
			nsRegressions, *tolerance*100, base.CPU, base.GOMAXPROCS, cur.CPU, cur.GOMAXPROCS)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
