// Remote mode: with -peers the shell is a cluster client instead of an
// embedded engine. Each query is classified read-only or updating at parse
// time (the same classifier the server uses); reads round-robin across the
// nodes currently reporting the follower role, spreading load over the read
// replicas, while writes go to the current leader. The leader is discovered
// through GET /repl/info and re-discovered whenever a request fails or a
// node answers 503 (mid-election); 307 redirects from a follower that
// rejected a write are followed automatically, replaying the same POST body
// at the leader it named.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/parser"
)

// remote is the shell's cluster-client state.
type remote struct {
	peers  []string
	client *http.Client
	// leader is the advertised URL writes are sent to ("" until discovered).
	leader string
	// followers is the latest set of nodes reporting the follower role.
	followers []string
	// rr round-robins reads across followers.
	rr int
}

// replInfo mirrors the server's /repl/info discovery document.
type replInfo struct {
	Term      uint64 `json:"term"`
	Role      string `json:"role"`
	Leader    string `json:"leader"`
	Advertise string `json:"advertise"`
}

func newRemote(peers []string) *remote {
	// The default transport follows 307s re-sending the body (NewRequest
	// wires GetBody for byte readers), which is exactly the write-redirect
	// behaviour the cluster's followers rely on.
	return &remote{peers: peers, client: &http.Client{Timeout: 30 * time.Second}}
}

// refresh re-probes every peer's /repl/info, refreshing the leader address
// and the follower set for read round-robin.
func (rm *remote) refresh() {
	rm.leader = ""
	rm.followers = rm.followers[:0]
	for _, p := range rm.peers {
		resp, err := rm.client.Get(p + "/repl/info")
		if err != nil {
			continue
		}
		var info replInfo
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&info)
		resp.Body.Close()
		if err != nil {
			continue
		}
		switch info.Role {
		case "leader":
			rm.leader = info.Advertise
		case "follower":
			rm.followers = append(rm.followers, p)
			if rm.leader == "" {
				rm.leader = info.Leader
			}
		}
	}
}

// pickRead returns the next read target: followers in round-robin order,
// falling back to any peer when no follower is known (single-node cluster,
// or discovery has not run yet).
func (rm *remote) pickRead() string {
	pool := rm.followers
	if len(pool) == 0 {
		pool = rm.peers
	}
	rm.rr++
	return pool[rm.rr%len(pool)]
}

// pickWrite returns the write target: the current leader, discovering it on
// demand. Falls back to any peer — its 307 redirect then routes the write.
func (rm *remote) pickWrite() string {
	if rm.leader == "" {
		rm.refresh()
	}
	if rm.leader != "" {
		return rm.leader
	}
	rm.rr++
	return rm.peers[rm.rr%len(rm.peers)]
}

// query classifies and routes one query, retrying through elections: a 503
// (no leader right now) backs off per Retry-After and re-discovers, a
// transport error marks the cached leader stale.
func (rm *remote) query(q string) {
	readOnly := false
	if ast, err := parser.Parse(q); err == nil {
		readOnly = ast.IsReadOnly()
	}
	body, _ := json.Marshal(map[string]any{"query": q})
	const attempts = 4
	for attempt := 1; ; attempt++ {
		target := rm.pickWrite()
		if readOnly {
			target = rm.pickRead()
		}
		resp, err := rm.client.Post(target+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			rm.leader = ""
			if attempt < attempts {
				rm.refresh()
				continue
			}
			fmt.Println("error:", err)
			return
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < attempts {
			// Mid-election or degraded leader; honour Retry-After and retry.
			wait := time.Second
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				wait = time.Duration(s) * time.Second
			}
			fmt.Printf("no leader right now, retrying in %v (%d/%d)\n", wait, attempt, attempts)
			time.Sleep(wait)
			rm.refresh()
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(raw, &e) == nil && e.Error != "" {
				fmt.Println("error:", e.Error)
			} else {
				fmt.Println("error:", resp.Status)
			}
			return
		}
		// The final URL after any redirect is the leader's.
		if !readOnly {
			if u := resp.Request.URL; u != nil {
				rm.leader = u.Scheme + "://" + u.Host
			}
		}
		printRemoteResult(raw, target, readOnly)
		return
	}
}

// printRemoteResult renders the server's queryResponse JSON as a table.
func printRemoteResult(raw []byte, target string, readOnly bool) {
	var out struct {
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
		Count   int      `json:"count"`
		TimeMs  float64  `json:"timeMs"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		fmt.Println("error: bad response:", err)
		return
	}
	if len(out.Columns) > 0 {
		fmt.Println(strings.Join(out.Columns, " | "))
		for _, row := range out.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = renderCell(v)
			}
			fmt.Println(strings.Join(cells, " | "))
		}
	}
	kind := "write on"
	if readOnly {
		kind = "read from"
	}
	fmt.Printf("%d row(s) in %.1fms (%s %s)\n", out.Count, out.TimeMs, kind, target)
}

// renderCell compacts one JSON result value for terminal display.
func renderCell(v any) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case string:
		return t
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	default:
		b, err := json.Marshal(t)
		if err != nil {
			return fmt.Sprint(t)
		}
		return string(b)
	}
}

// command handles remote-mode shell commands; most local commands do not
// apply against a served cluster.
func (rm *remote) command(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":quit", ":exit", ":q":
		return false
	case ":help":
		fmt.Println(":peers — cluster membership and roles")
		fmt.Println(":explain <query> — show the plan (from a read replica)")
		fmt.Println(":quit — exit")
	case ":peers":
		for _, p := range rm.peers {
			resp, err := rm.client.Get(p + "/repl/info")
			if err != nil {
				fmt.Printf("%s  unreachable (%v)\n", p, err)
				continue
			}
			var info replInfo
			err = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&info)
			resp.Body.Close()
			if err != nil {
				fmt.Printf("%s  bad /repl/info (%v)\n", p, err)
				continue
			}
			fmt.Printf("%s  role=%s term=%d leader=%s\n", p, info.Role, info.Term, info.Leader)
		}
	case ":explain":
		q := strings.TrimSpace(strings.TrimPrefix(line, ":explain"))
		resp, err := rm.client.Get(rm.pickRead() + "/explain?q=" + url.QueryEscape(q))
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		var out struct {
			Plan  string `json:"plan"`
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &out) == nil && out.Error != "" {
			fmt.Println("error:", out.Error)
		} else {
			fmt.Print(out.Plan)
		}
	default:
		fmt.Println("unknown or local-only command; :help lists remote commands")
	}
	return true
}
