// Command cypher-shell is an interactive read-evaluate-print loop over an
// in-memory property graph. Queries are entered directly; lines starting
// with ':' are shell commands:
//
//	:load citations|teachers|social|fraud|datacenter   load a sample dataset
//	:explain <query>                                    show the plan only
//	:stats                                              graph statistics
//	:checkpoint                                         snapshot a durable graph (-data)
//	:morphism edge|homo|node                            switch matching semantics
//	:help                                               this help
//	:quit                                               exit
//
// With -data DIR the session is durable: the graph is recovered from DIR on
// start, every write is journaled to its write-ahead log, and quitting
// checkpoints and closes the store — so the next session picks up exactly
// where this one left off.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	cypher "repro"
	"repro/internal/datasets"
	"repro/internal/graph"
)

type shell struct {
	store    *graph.Graph
	graph    *cypher.Graph
	morphism cypher.Morphism
	durable  bool
	// timeout and budget govern every query this shell runs; they survive
	// :load store swaps.
	timeout time.Duration
	budget  int64
}

func main() {
	dataDir := flag.String("data", "", "data directory; enables WAL + snapshot persistence")
	peersCSV := flag.String("peers", "", "comma-separated cypher-serve base URLs; run as a cluster client (reads round-robin the followers, writes go to the leader)")
	queryTimeout := flag.Duration("query-timeout", 0, "wall-clock cap per query (0 = unbounded)")
	memoryBudget := flag.Int64("memory-budget", 0, "bytes of materialized state one query may hold (0 = unlimited)")
	flag.Parse()

	if *peersCSV != "" {
		if *dataDir != "" {
			fmt.Fprintln(os.Stderr, "-peers is a remote session; -data cannot be combined with it")
			os.Exit(2)
		}
		var peers []string
		for _, p := range strings.Split(*peersCSV, ",") {
			if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
				peers = append(peers, p)
			}
		}
		if len(peers) == 0 {
			fmt.Fprintln(os.Stderr, "-peers needs at least one base URL")
			os.Exit(2)
		}
		runRemote(newRemote(peers))
		return
	}

	sh := &shell{timeout: *queryTimeout, budget: *memoryBudget}
	if *dataDir != "" {
		g, err := cypher.Open(*dataDir, cypher.Options{DefaultTimeout: sh.timeout, MemoryBudget: sh.budget})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(2)
		}
		sh.graph = g
		sh.durable = true
		defer func() {
			if err := g.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "checkpoint:", err)
			}
			if err := g.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "close:", err)
			}
		}()
		s := g.Stats()
		fmt.Printf("opened %s (%d nodes, %d relationships)\n", *dataDir, s.Nodes, s.Relationships)
	} else {
		sh.setStore(graph.New())
	}
	fmt.Println("cypher-shell — an openCypher-style REPL (:help for commands)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	fmt.Print("cypher> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, ":"):
			if !sh.command(line) {
				return
			}
		default:
			sh.query(line)
		}
		fmt.Print("cypher> ")
	}
}

// runRemote is the REPL loop for -peers cluster sessions.
func runRemote(rm *remote) {
	rm.refresh()
	fmt.Printf("cypher-shell — cluster client for %s (:help for commands)\n", strings.Join(rm.peers, ", "))
	if rm.leader != "" {
		fmt.Println("current leader:", rm.leader)
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	fmt.Print("cypher> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, ":"):
			if !rm.command(line) {
				return
			}
		default:
			rm.query(line)
		}
		fmt.Print("cypher> ")
	}
}

func (sh *shell) setStore(store *graph.Graph) {
	sh.store = store
	sh.graph = cypher.Wrap(store, cypher.Options{
		Morphism:       sh.morphism,
		DefaultTimeout: sh.timeout,
		MemoryBudget:   sh.budget,
	})
}

func (sh *shell) command(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":quit", ":exit", ":q":
		return false
	case ":help":
		fmt.Println(":load citations|teachers|social|fraud|datacenter — load a sample dataset")
		fmt.Println(":explain <query> — show the query plan")
		fmt.Println(":stats — graph statistics")
		fmt.Println(":checkpoint — snapshot a durable graph and truncate its WAL (-data)")
		fmt.Println(":morphism edge|homo|node — pattern matching semantics")
		fmt.Println(":quit — exit")
	case ":checkpoint":
		if !sh.durable {
			fmt.Println("not a durable session (start with -data DIR)")
			return true
		}
		if err := sh.graph.Checkpoint(); err != nil {
			fmt.Println("error:", err)
			return true
		}
		if ds, ok := sh.graph.DurabilityStats(); ok {
			fmt.Printf("checkpoint written (generation %d)\n", ds.Generation)
		}
	case ":stats":
		s := sh.graph.Stats()
		fmt.Printf("nodes: %d, relationships: %d\nlabels: %v\ntypes: %v\n", s.Nodes, s.Relationships, s.Labels, s.Types)
	case ":load":
		if sh.durable {
			fmt.Println(":load replaces the whole graph and is not available with -data; seed with queries instead")
			return true
		}
		if len(fields) < 2 {
			fmt.Println("usage: :load citations|teachers|social|fraud|datacenter")
			return true
		}
		switch fields[1] {
		case "citations":
			store, _ := datasets.Citations()
			sh.setStore(store)
		case "teachers":
			store, _ := datasets.Teachers()
			sh.setStore(store)
		case "social":
			sh.setStore(datasets.SocialNetwork(datasets.SocialConfig{People: 1000, FriendsEach: 5, Seed: 1}))
		case "fraud":
			sh.setStore(datasets.FraudNetwork(datasets.FraudConfig{AccountHolders: 500, SharingFraction: 0.1, Seed: 1}))
		case "datacenter":
			sh.setStore(datasets.DataCenter(datasets.DataCenterConfig{Services: 300, MaxDeps: 3, Seed: 1}))
		default:
			fmt.Println("unknown dataset:", fields[1])
			return true
		}
		fmt.Println("loaded", fields[1], "—", sh.store.String())
	case ":morphism":
		if sh.durable {
			fmt.Println(":morphism is fixed for a durable session; reopen with different options instead")
			return true
		}
		if len(fields) < 2 {
			fmt.Println("usage: :morphism edge|homo|node")
			return true
		}
		switch fields[1] {
		case "edge":
			sh.morphism = cypher.EdgeIsomorphism
		case "homo":
			sh.morphism = cypher.Homomorphism
		case "node":
			sh.morphism = cypher.NodeIsomorphism
		default:
			fmt.Println("unknown morphism:", fields[1])
			return true
		}
		sh.setStore(sh.store)
		fmt.Println("matching semantics set to", fields[1])
	case ":explain":
		q := strings.TrimSpace(strings.TrimPrefix(line, ":explain"))
		plan, err := sh.graph.Explain(q)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(plan)
	default:
		fmt.Println("unknown command; :help lists commands")
	}
	return true
}

func (sh *shell) query(q string) {
	res, err := sh.graph.Run(q, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(res)
	fmt.Printf("%d row(s)\n", res.Len())
}
