// Command cypher-serve exposes a cypher.Graph over HTTP so many clients can
// query one in-memory property graph concurrently. The engine classifies
// each query as read-only or mutating at parse time: read-only queries run
// in parallel under a shared lock while mutating queries serialize, and
// compiled plans are cached per query text until a mutation invalidates
// them, so a hot read workload skips parsing and planning entirely.
//
// Endpoints:
//
//	POST /query    {"query": "...", "params": {...}} -> columns, rows, summary
//	GET  /explain  ?q=<query>                        -> the compiled plan
//	GET  /stats                                      -> graph + plan-cache stats
//	GET  /healthz                                    -> 200 once serving
//
// With -data DIR the graph is durable: every write query is journaled to a
// write-ahead log before its response is sent (fsync policy via -sync), the
// server checkpoints on graceful shutdown (SIGINT/SIGTERM) and optionally on
// a timer (-checkpoint-every), and a restart recovers the stored graph —
// snapshot plus WAL replay — before serving. A requested -dataset seeds the
// store only when it is empty, so restarts keep accumulated writes.
//
// Example:
//
//	cypher-serve -addr :7474 -dataset social -size 10000 -data ./social-data
//	curl -s localhost:7474/query -d '{"query": "MATCH (p:Person) RETURN count(*) AS c"}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	cypher "repro"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/value"
)

func main() {
	var (
		addr        = flag.String("addr", ":7474", "listen address")
		dataset     = flag.String("dataset", "empty", "initial dataset: empty, citations, social, datacenter, fraud")
		size        = flag.Int("size", 1000, "size parameter for the synthetic datasets")
		parallelism = flag.Int("parallelism", 1, "workers per read query (morsel-driven; 1 = serial, 0 = all CPUs)")
		dataDir     = flag.String("data", "", "data directory; enables WAL + snapshot persistence")
		syncMode    = flag.String("sync", "always", "WAL fsync policy with -data: always, interval or none")
		ckptEvery   = flag.Duration("checkpoint-every", 0, "with -data, checkpoint on this interval (0 = only on shutdown)")
	)
	flag.Parse()

	if *parallelism <= 0 {
		*parallelism = runtime.NumCPU()
	}
	if *ckptEvery > 0 && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "-checkpoint-every requires -data (an in-memory graph has nothing to checkpoint)")
		os.Exit(2)
	}
	// Validate durability flags unconditionally: a typo'd or pointless -sync
	// must not be silently accepted just because -data is absent.
	if _, err := cypher.ParseSyncMode(*syncMode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *syncMode != "always" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "-sync requires -data (an in-memory graph has no WAL to sync)")
		os.Exit(2)
	}
	g, err := buildGraph(*dataset, *size, *parallelism, *dataDir, *syncMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	s := g.Stats()
	log.Printf("serving %s dataset (%d nodes, %d relationships) on %s, per-query parallelism %d",
		*dataset, s.Nodes, s.Relationships, *addr, *parallelism)
	if ds, ok := g.DurabilityStats(); ok {
		log.Printf("durable: dir=%s sync=%s generation=%d (recovered %d snapshot + %d WAL records%s)",
			ds.Dir, ds.SyncMode, ds.Generation, ds.Recovery.SnapshotRecords, ds.Recovery.WALRecords,
			tornNote(ds.Recovery.TornTail))
	}

	mux := http.NewServeMux()
	srv := &server{graph: g, started: time.Now(), parallelism: *parallelism}
	mux.HandleFunc("/query", srv.handleQuery)
	mux.HandleFunc("/explain", srv.handleExplain)
	mux.HandleFunc("/stats", srv.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := g.Checkpoint(); err != nil {
						log.Printf("periodic checkpoint failed: %v", err)
					} else {
						log.Printf("checkpoint written")
					}
				}
			}
		}()
	}

	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	<-ctx.Done()
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	// Checkpoint so the next start recovers from a snapshot instead of
	// replaying the whole WAL, then release the files.
	if err := g.Checkpoint(); err != nil {
		log.Printf("shutdown checkpoint: %v", err)
	}
	if err := g.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}

func tornNote(torn bool) string {
	if torn {
		return ", torn tail truncated"
	}
	return ""
}

func buildGraph(dataset string, size, parallelism int, dataDir, syncMode string) (*cypher.Graph, error) {
	opts := cypher.Options{Parallelism: parallelism}

	// Validate the dataset name up front: on a non-virgin durable directory
	// the seeding path is skipped entirely, and a typo must not be silently
	// accepted (and then seed on some later virgin restart).
	if !datasetKnown(dataset) {
		return nil, errUnknownDataset(dataset)
	}

	if dataDir != "" {
		mode, err := cypher.ParseSyncMode(syncMode)
		if err != nil {
			return nil, err
		}
		opts.SyncMode = mode
		g, err := cypher.Open(dataDir, opts)
		if err != nil {
			return nil, err
		}
		// Seed only a virgin directory — generation 0 with nothing replayed,
		// i.e. never checkpointed and never written. An empty graph does not
		// qualify: a client may have deleted everything (leaving delete
		// records in the WAL, or — after a checkpoint — an empty snapshot at
		// generation ≥ 1), and a restart must not resurrect the dataset.
		virgin := false
		if ds, ok := g.DurabilityStats(); ok {
			virgin = ds.Generation == 0 && ds.Recovery.SnapshotRecords+ds.Recovery.WALRecords == 0
		}
		if virgin {
			if store, err := datasetStore(dataset, size); err != nil {
				g.Close()
				return nil, err
			} else if store != nil {
				if err := g.ImportFrom(store); err != nil {
					g.Close()
					return nil, fmt.Errorf("seed dataset: %w", err)
				}
			}
		}
		return g, nil
	}

	store, err := datasetStore(dataset, size)
	if err != nil {
		return nil, err
	}
	if store == nil {
		return cypher.NewWithOptions(opts), nil
	}
	return cypher.Wrap(store, opts), nil
}

// datasetBuilders is the single source of valid -dataset names; "empty" maps
// to nil (no seeding).
var datasetBuilders = map[string]func(size int) *graph.Graph{
	"":      nil,
	"empty": nil,
	"citations": func(int) *graph.Graph {
		store, _ := datasets.Citations()
		return store
	},
	"social": func(size int) *graph.Graph {
		return datasets.SocialNetwork(datasets.SocialConfig{People: size, FriendsEach: 8, Seed: 42})
	},
	"datacenter": func(size int) *graph.Graph {
		return datasets.DataCenter(datasets.DataCenterConfig{Services: size, MaxDeps: 3, Seed: 5})
	},
	"fraud": func(size int) *graph.Graph {
		return datasets.FraudNetwork(datasets.FraudConfig{AccountHolders: size, SharingFraction: 0.15, Seed: 5})
	},
}

// datasetKnown reports whether name is a valid -dataset value.
func datasetKnown(name string) bool {
	_, ok := datasetBuilders[name]
	return ok
}

func errUnknownDataset(name string) error {
	return fmt.Errorf("unknown dataset %q (want empty, citations, social, datacenter or fraud)", name)
}

// datasetStore builds the requested example dataset, or nil for "empty".
func datasetStore(dataset string, size int) (*graph.Graph, error) {
	build, ok := datasetBuilders[dataset]
	if !ok {
		return nil, errUnknownDataset(dataset)
	}
	if build == nil {
		return nil, nil
	}
	return build(size), nil
}

type server struct {
	graph       *cypher.Graph
	started     time.Time
	parallelism int
}

type queryRequest struct {
	Query  string         `json:"query"`
	Params map[string]any `json:"params"`
}

type queryResponse struct {
	Columns     []string `json:"columns"`
	Rows        [][]any  `json:"rows"`
	Count       int      `json:"count"`
	ReadOnly    bool     `json:"readOnly"`
	Parallelism int      `json:"parallelism"`
	TimeMs      float64  `json:"timeMs"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON body {\"query\": ..., \"params\": ...}")
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, "missing \"query\"")
		return
	}
	start := time.Now()
	res, err := s.graph.Run(req.Query, req.Params)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	elapsed := time.Since(start)
	rows := res.Rows()
	out := queryResponse{
		Columns:     res.Columns(),
		Rows:        make([][]any, len(rows)),
		Count:       len(rows),
		ReadOnly:    res.ReadOnly(),
		Parallelism: res.Parallelism(),
		TimeMs:      float64(elapsed.Microseconds()) / 1000,
	}
	for i, row := range rows {
		conv := make([]any, len(row))
		for j, v := range row {
			conv[j] = jsonValue(v)
		}
		out.Rows[i] = conv
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing ?q=<query>")
		return
	}
	plan, err := s.graph.Explain(q)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": q, "plan": plan})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	gs := s.graph.Stats()
	cs := s.graph.PlanCacheStats()
	ms := s.graph.MVCCStats()
	durability := map[string]any{"enabled": false}
	if ds, ok := s.graph.DurabilityStats(); ok {
		durability = map[string]any{
			"enabled":          true,
			"dir":              ds.Dir,
			"syncMode":         ds.SyncMode,
			"generation":       ds.Generation,
			"walRecords":       ds.Records,
			"walBatches":       ds.Batches,
			"walBytes":         ds.Bytes,
			"walSizeBytes":     ds.WALSizeBytes,
			"fsyncs":           ds.Syncs,
			"checkpoints":      ds.Checkpoints,
			"recoveredRecords": ds.Recovery.SnapshotRecords + ds.Recovery.WALRecords,
			"recoveredTorn":    ds.Recovery.TornTail,
		}
		if !ds.LastCheckpoint.IsZero() {
			durability["lastCheckpoint"] = ds.LastCheckpoint.UTC().Format(time.RFC3339)
		}
	}
	indexes := make([]map[string]any, 0, len(gs.Indexes))
	for _, is := range gs.Indexes {
		sel := 1.0
		if is.DistinctKeys > 0 {
			sel = 1.0 / float64(is.DistinctKeys)
		}
		indexes = append(indexes, map[string]any{
			"label":        is.Label,
			"property":     is.Property,
			"entries":      is.Entries,
			"distinctKeys": is.DistinctKeys,
			"selectivity":  sel,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"durability": durability,
		"graph": map[string]any{
			"nodes":         gs.Nodes,
			"relationships": gs.Relationships,
			"labels":        gs.Labels,
			"types":         gs.Types,
			"averageDegree": gs.AverageDegree,
			"indexes":       indexes,
		},
		"planCache": map[string]any{
			"entries":       cs.Entries,
			"hits":          cs.Hits,
			"misses":        cs.Misses,
			"invalidations": cs.Invalidations,
		},
		"mvcc": map[string]any{
			"enabled":          ms.Enabled,
			"versions":         ms.Versions,
			"publishedEpoch":   ms.PublishedEpoch,
			"liveEpoch":        ms.LiveEpoch,
			"activePins":       ms.ActivePins,
			"pins":             ms.Pins,
			"publishes":        ms.Publishes,
			"writerDrainWaits": ms.WriterDrainWaits,
			"rebuilds":         ms.Rebuilds,
			"backlogLength":    ms.BacklogLen,
		},
		"execution": map[string]any{
			"parallelism": s.parallelism,
			"cpus":        runtime.NumCPU(),
		},
		"uptimeSeconds": time.Since(s.started).Seconds(),
	})
}

// jsonValue converts a native Go result value (as produced by Result.Rows)
// into something json.Marshal renders faithfully: graph entities become
// explicit objects rather than opaque interface views.
func jsonValue(v any) any {
	switch t := v.(type) {
	case cypher.Node:
		return map[string]any{
			"id":         t.ID(),
			"labels":     t.Labels(),
			"properties": entityProps(t.PropertyKeys(), t.Property),
		}
	case cypher.Relationship:
		return map[string]any{
			"id":         t.ID(),
			"type":       t.RelType(),
			"start":      t.StartNodeID(),
			"end":        t.EndNodeID(),
			"properties": entityProps(t.PropertyKeys(), t.Property),
		}
	case cypher.Path:
		nodes := make([]any, len(t.Nodes))
		for i, n := range t.Nodes {
			nodes[i] = jsonValue(n)
		}
		rels := make([]any, len(t.Rels))
		for i, rel := range t.Rels {
			rels[i] = jsonValue(rel)
		}
		return map[string]any{"nodes": nodes, "relationships": rels}
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = jsonValue(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = jsonValue(e)
		}
		return out
	default:
		return v
	}
}

func entityProps(keys []string, get func(string) cypher.Value) map[string]any {
	out := make(map[string]any, len(keys))
	for _, k := range keys {
		out[k] = jsonValue(value.ToGo(get(k)))
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}
