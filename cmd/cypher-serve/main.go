// Command cypher-serve exposes a cypher.Graph over HTTP so many clients can
// query one in-memory property graph concurrently. The engine classifies
// each query as read-only or mutating at parse time: read-only queries run
// in parallel under a shared lock while mutating queries serialize, and
// compiled plans are cached per query text until a mutation invalidates
// them, so a hot read workload skips parsing and planning entirely.
//
// Endpoints:
//
//	POST /query             {"query": "...", "params": {...}} -> columns, rows, summary
//	GET  /explain           ?q=<query>                        -> the compiled plan
//	GET  /stats             -> graph + plan-cache + replication stats
//	GET  /healthz           -> JSON {status, role, position, lag}; 503 on a failed follower
//	POST /admin/checkpoint  -> force a snapshot + WAL truncation (durable only)
//	POST /admin/resync      -> force a follower to rebuild from the leader's snapshot
//
// With -data DIR the graph is durable: every write query is journaled to a
// write-ahead log before its response is sent (fsync policy via -sync), the
// server checkpoints on graceful shutdown (SIGINT/SIGTERM) and optionally on
// a timer (-checkpoint-every), and a restart recovers the stored graph —
// snapshot plus WAL replay — before serving. A requested -dataset seeds the
// store only when it is empty, so restarts keep accumulated writes.
//
// -role selects a static replication topology. A leader additionally serves
// its WAL as a replication stream under /repl; a follower tails the leader
// named by -follow, serves reads from its own MVCC versions, and answers
// write queries with 307 redirects to the leader's advertised address.
//
// -peers replaces the static topology with a self-healing cluster: every
// node gets the full member list, the cluster elects its leader over a
// time-bounded lease (-election-timeout), writes are acknowledged only
// after a majority has journaled them, and a failed leader is replaced
// automatically with its stale generation fenced off. During a leaderless
// window writes answer 503 + Retry-After.
//
// Example self-healing 3-node cluster:
//
//	PEERS=http://127.0.0.1:7474,http://127.0.0.1:7475,http://127.0.0.1:7476
//	cypher-serve -addr :7474 -data ./n1 -peers $PEERS
//	cypher-serve -addr :7475 -data ./n2 -peers $PEERS
//	cypher-serve -addr :7476 -data ./n3 -peers $PEERS
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served only with -pprof
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	cypher "repro"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/value"
)

func main() {
	var (
		addr        = flag.String("addr", ":7474", "listen address")
		dataset     = flag.String("dataset", "empty", "initial dataset: empty, citations, social, datacenter, fraud")
		size        = flag.Int("size", 1000, "size parameter for the synthetic datasets")
		parallelism = flag.Int("parallelism", 1, "workers per read query (morsel-driven; 1 = serial, 0 = all CPUs)")
		batchSize   = flag.Int("batch-size", 0, "rows per batch in the vectorized pipeline (0 = default 1024, negative = row-at-a-time)")
		pprofAddr   = flag.String("pprof", "", "optional listen address for net/http/pprof (e.g. localhost:6060); empty disables")
		dataDir     = flag.String("data", "", "data directory; enables WAL + snapshot persistence")
		syncMode    = flag.String("sync", "always", "WAL fsync policy with -data: always, interval or none")
		ckptEvery   = flag.Duration("checkpoint-every", 0, "with -data, checkpoint on this interval (0 = only on shutdown)")
		role        = flag.String("role", "single", "replication role: single, leader or follower")
		follow      = flag.String("follow", "", "with -role follower, the leader's base URL (e.g. http://127.0.0.1:7474)")
		peers       = flag.String("peers", "", "comma-separated base URLs of every cluster member (including this node); enables leader election and automatic failover, replacing -role/-follow")
		electionTmo = flag.Duration("election-timeout", 0, "with -peers, leader silence tolerated before campaigning (0 = default 3s)")
		advertise   = flag.String("advertise", "", "with -role leader or -peers, this node's public base URL (default derived from the listen address)")

		queryTimeout = flag.Duration("query-timeout", 0, "wall-clock cap per query; per-request timeoutMs may tighten but never exceed it (0 = no cap)")
		memoryBudget = flag.Int64("memory-budget", 0, "bytes of materialized state (sorts, aggregates, result rows) one query may hold; per-request memoryBudget may tighten it (0 = unlimited)")
		maxInflight  = flag.Int("max-inflight", 0, "admission control: maximum queries executing at once (0 = unlimited, no admission control)")
		queueDepth   = flag.Int("queue-depth", 0, "with -max-inflight, requests allowed to wait for a slot before 429 (0 = reject immediately at capacity)")
		queueWait    = flag.Duration("queue-wait", 5*time.Second, "with -max-inflight, how long a queued request waits for a slot before 503")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown: how long in-flight queries get to finish before the listener is torn down")
		slowQuery    = flag.Duration("slow-query-threshold", 0, "log queries slower than this (0 = disabled)")
		hbTimeout    = flag.Duration("heartbeat-timeout", 0, "with -role follower, declare the stream dead after this long without leader frames (0 = default 15s)")
		hbInterval   = flag.Duration("heartbeat-interval", 0, "with -role leader, idle-stream heartbeat period; must stay well under the followers' -heartbeat-timeout (0 = default 2s)")
	)
	flag.Parse()

	if *parallelism <= 0 {
		*parallelism = runtime.NumCPU()
	}
	if *ckptEvery > 0 && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "-checkpoint-every requires -data (an in-memory graph has nothing to checkpoint)")
		os.Exit(2)
	}
	// Validate durability flags unconditionally: a typo'd or pointless -sync
	// must not be silently accepted just because -data is absent.
	if _, err := cypher.ParseSyncMode(*syncMode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *syncMode != "always" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "-sync requires -data (an in-memory graph has no WAL to sync)")
		os.Exit(2)
	}
	if *peers != "" {
		// Clustered mode replaces the static role split: every node boots a
		// follower and elections decide who leads.
		if *role != "single" {
			fmt.Fprintln(os.Stderr, "-peers replaces -role (the cluster elects its leader)")
			os.Exit(2)
		}
		if *follow != "" {
			fmt.Fprintln(os.Stderr, "-peers replaces -follow (the cluster elects its leader)")
			os.Exit(2)
		}
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "-peers requires -data (replication ships the WAL)")
			os.Exit(2)
		}
		if *dataset != "" && *dataset != "empty" {
			fmt.Fprintln(os.Stderr, "-dataset cannot be used with -peers (all data comes from the elected leader)")
			os.Exit(2)
		}
		if *ckptEvery > 0 {
			fmt.Fprintln(os.Stderr, "-checkpoint-every cannot be used with -peers (the elected leader checkpoints at promotion)")
			os.Exit(2)
		}
		if *hbTimeout != 0 {
			fmt.Fprintln(os.Stderr, "-heartbeat-timeout cannot be used with -peers (it derives from -election-timeout)")
			os.Exit(2)
		}
	} else if *electionTmo != 0 {
		fmt.Fprintln(os.Stderr, "-election-timeout requires -peers")
		os.Exit(2)
	}
	switch *role {
	case "single":
		if *follow != "" {
			fmt.Fprintln(os.Stderr, "-follow requires -role follower")
			os.Exit(2)
		}
	case "leader":
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "-role leader requires -data (replication ships the WAL)")
			os.Exit(2)
		}
		if *follow != "" {
			fmt.Fprintln(os.Stderr, "-follow requires -role follower")
			os.Exit(2)
		}
	case "follower":
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "-role follower requires -data (the stream is journaled locally)")
			os.Exit(2)
		}
		if *follow == "" {
			fmt.Fprintln(os.Stderr, "-role follower requires -follow <leader base URL>")
			os.Exit(2)
		}
		if *dataset != "" && *dataset != "empty" {
			fmt.Fprintln(os.Stderr, "-dataset cannot be used with -role follower (all data comes from the leader)")
			os.Exit(2)
		}
		if *ckptEvery > 0 {
			fmt.Fprintln(os.Stderr, "-checkpoint-every cannot be used with -role follower (only the leader truncates the stream)")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -role %q (want single, leader or follower)\n", *role)
		os.Exit(2)
	}
	if *maxInflight < 0 || *queueDepth < 0 || *queueWait < 0 || *drainTimeout < 0 {
		fmt.Fprintln(os.Stderr, "-max-inflight, -queue-depth, -queue-wait and -drain-timeout must be non-negative")
		os.Exit(2)
	}
	if *queueDepth > 0 && *maxInflight == 0 {
		fmt.Fprintln(os.Stderr, "-queue-depth requires -max-inflight (there is no admission queue without a slot limit)")
		os.Exit(2)
	}
	if *hbTimeout != 0 && *role != "follower" {
		fmt.Fprintln(os.Stderr, "-heartbeat-timeout requires -role follower")
		os.Exit(2)
	}
	if *hbInterval != 0 && *role != "leader" && *peers == "" {
		fmt.Fprintln(os.Stderr, "-heartbeat-interval requires -role leader or -peers")
		os.Exit(2)
	}

	// Bind before building the graph so the actual address (-addr :0 picks a
	// free port) is known for logs and the advertise default.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *advertise == "" {
		*advertise = deriveAdvertise(ln.Addr())
	}

	if *pprofAddr != "" {
		// The blank pprof import registers its handlers on the default mux,
		// which the API server below never serves — profiling stays opt-in on
		// its own listener. Header/idle timeouts shed half-open connections;
		// the write timeout is generous because CPU/trace profiles stream for
		// their whole ?seconds window.
		pprofSrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           nil, // default mux, where pprof registered
			ReadHeaderTimeout: 10 * time.Second,
			WriteTimeout:      5 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			log.Printf("pprof: serving on http://%s/debug/pprof/", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	effRole := *role
	if *peers != "" {
		effRole = "cluster"
	}
	gopts := cypher.Options{
		Parallelism:              *parallelism,
		BatchSize:                *batchSize,
		DefaultTimeout:           *queryTimeout,
		MemoryBudget:             *memoryBudget,
		ReplicaHeartbeatTimeout:  *hbTimeout,
		ReplicaHeartbeatInterval: *hbInterval,
		Advertise:                *advertise,
		Peers:                    splitPeers(*peers),
		ElectionTimeout:          *electionTmo,
	}
	g, err := buildGraph(effRole, *follow, *dataset, *size, *dataDir, *syncMode, gopts)
	if err != nil {
		ln.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	s := g.Stats()
	log.Printf("serving %s dataset (%d nodes, %d relationships) on %s as %s, per-query parallelism %d",
		*dataset, s.Nodes, s.Relationships, ln.Addr(), effRole, *parallelism)
	if ds, ok := g.DurabilityStats(); ok {
		log.Printf("durable: dir=%s sync=%s generation=%d (recovered %d snapshot + %d WAL records%s)",
			ds.Dir, ds.SyncMode, ds.Generation, ds.Recovery.SnapshotRecords, ds.Recovery.WALRecords,
			tornNote(ds.Recovery.TornTail))
	}

	srv := newServer(serverConfig{
		graph:        g,
		role:         effRole,
		parallelism:  *parallelism,
		queryTimeout: *queryTimeout,
		memoryBudget: *memoryBudget,
		maxInflight:  *maxInflight,
		queueDepth:   *queueDepth,
		queueWait:    *queueWait,
		slowQuery:    *slowQuery,
	})
	mux := srv.routes()
	if *role == "leader" || *peers != "" {
		h, err := g.ReplicationHandler(*advertise)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		mux.Handle("/repl/", http.StripPrefix("/repl", h))
		log.Printf("replication: serving /repl, advertising %s", *advertise)
	}
	if *peers != "" {
		log.Printf("replication: clustered with %v (election timeout %v)", gopts.Peers, gopts.ElectionTimeout)
	}
	if *role == "follower" {
		log.Printf("replication: following %s", *follow)
	}

	// Header/idle timeouts shed slowloris and half-open clients. The write
	// timeout must outlast the longest legitimate response: a query runs up
	// to -query-timeout before its body is even produced, so the deadline is
	// that plus slack (or a generous fixed window when queries are
	// unbounded). The replication stream under /repl outlives any fixed
	// deadline by design and pushes its own per-flush write deadline forward.
	writeTimeout := 5 * time.Minute
	if *queryTimeout > 0 && *queryTimeout+30*time.Second > writeTimeout {
		writeTimeout = *queryTimeout + 30*time.Second
	}
	httpSrv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := g.Checkpoint(); err != nil {
						log.Printf("periodic checkpoint failed: %v", err)
					} else {
						log.Printf("checkpoint written")
					}
				}
			}
		}()
	}

	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	<-ctx.Done()
	log.Printf("shutting down: draining in-flight queries (up to %v)", *drainTimeout)
	// Graceful drain: stop accepting, let in-flight requests finish inside
	// -drain-timeout, then hard-close whatever is left so a wedged client
	// cannot hold up the shutdown checkpoint below.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: drain incomplete (%v), closing remaining connections", err)
		httpSrv.Close()
	}
	// Checkpoint so the next start recovers from a snapshot instead of
	// replaying the whole WAL, then release the files. Followers skip this:
	// their WAL must stay a byte-identical prefix of the leader's, and
	// truncating it locally would fork the generation numbering. Clustered
	// nodes skip it too — the node may be (or become) a follower, and an
	// elected leader already checkpointed at promotion.
	if *role != "follower" && *peers == "" {
		if err := g.Checkpoint(); err != nil {
			log.Printf("shutdown checkpoint: %v", err)
		}
	}
	if err := g.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}

// deriveAdvertise turns the bound listen address into a client-reachable base
// URL: a wildcard host (":7474", "0.0.0.0", "::") becomes 127.0.0.1, which is
// right for single-machine clusters and tests; multi-host deployments set
// -advertise explicitly.
func deriveAdvertise(a net.Addr) string {
	host, port := "127.0.0.1", "7474"
	if tcp, ok := a.(*net.TCPAddr); ok {
		port = fmt.Sprint(tcp.Port)
		if ip := tcp.IP; len(ip) > 0 && !ip.IsUnspecified() {
			host = ip.String()
			if ip.To4() == nil {
				host = "[" + host + "]"
			}
		}
	}
	return "http://" + host + ":" + port
}

// splitPeers parses the -peers list, tolerating spaces and trailing slashes.
func splitPeers(csv string) []string {
	if csv == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(csv, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func tornNote(torn bool) string {
	if torn {
		return ", torn tail truncated"
	}
	return ""
}

func buildGraph(role, follow, dataset string, size int, dataDir, syncMode string, opts cypher.Options) (*cypher.Graph, error) {
	// Validate the dataset name up front: on a non-virgin durable directory
	// the seeding path is skipped entirely, and a typo must not be silently
	// accepted (and then seed on some later virgin restart).
	if !datasetKnown(dataset) {
		return nil, errUnknownDataset(dataset)
	}

	if role == "cluster" {
		mode, err := cypher.ParseSyncMode(syncMode)
		if err != nil {
			return nil, err
		}
		opts.SyncMode = mode
		return cypher.OpenCluster(dataDir, opts)
	}

	if role == "follower" {
		mode, err := cypher.ParseSyncMode(syncMode)
		if err != nil {
			return nil, err
		}
		opts.SyncMode = mode
		return cypher.OpenFollower(dataDir, follow, opts)
	}

	if dataDir != "" {
		mode, err := cypher.ParseSyncMode(syncMode)
		if err != nil {
			return nil, err
		}
		opts.SyncMode = mode
		g, err := cypher.Open(dataDir, opts)
		if err != nil {
			return nil, err
		}
		// Seed only a virgin directory — generation 0 with nothing replayed,
		// i.e. never checkpointed and never written. An empty graph does not
		// qualify: a client may have deleted everything (leaving delete
		// records in the WAL, or — after a checkpoint — an empty snapshot at
		// generation ≥ 1), and a restart must not resurrect the dataset.
		virgin := false
		if ds, ok := g.DurabilityStats(); ok {
			virgin = ds.Generation == 0 && ds.Recovery.SnapshotRecords+ds.Recovery.WALRecords == 0
		}
		if virgin {
			if store, err := datasetStore(dataset, size); err != nil {
				g.Close()
				return nil, err
			} else if store != nil {
				if err := g.ImportFrom(store); err != nil {
					g.Close()
					return nil, fmt.Errorf("seed dataset: %w", err)
				}
			}
		}
		return g, nil
	}

	store, err := datasetStore(dataset, size)
	if err != nil {
		return nil, err
	}
	if store == nil {
		return cypher.NewWithOptions(opts), nil
	}
	return cypher.Wrap(store, opts), nil
}

// datasetBuilders is the single source of valid -dataset names; "empty" maps
// to nil (no seeding).
var datasetBuilders = map[string]func(size int) *graph.Graph{
	"":      nil,
	"empty": nil,
	"citations": func(int) *graph.Graph {
		store, _ := datasets.Citations()
		return store
	},
	"social": func(size int) *graph.Graph {
		return datasets.SocialNetwork(datasets.SocialConfig{People: size, FriendsEach: 8, Seed: 42})
	},
	"datacenter": func(size int) *graph.Graph {
		return datasets.DataCenter(datasets.DataCenterConfig{Services: size, MaxDeps: 3, Seed: 5})
	},
	"fraud": func(size int) *graph.Graph {
		return datasets.FraudNetwork(datasets.FraudConfig{AccountHolders: size, SharingFraction: 0.15, Seed: 5})
	},
}

// datasetKnown reports whether name is a valid -dataset value.
func datasetKnown(name string) bool {
	_, ok := datasetBuilders[name]
	return ok
}

func errUnknownDataset(name string) error {
	return fmt.Errorf("unknown dataset %q (want empty, citations, social, datacenter or fraud)", name)
}

// datasetStore builds the requested example dataset, or nil for "empty".
func datasetStore(dataset string, size int) (*graph.Graph, error) {
	build, ok := datasetBuilders[dataset]
	if !ok {
		return nil, errUnknownDataset(dataset)
	}
	if build == nil {
		return nil, nil
	}
	return build(size), nil
}

// serverConfig bundles the governance knobs main parses from flags; tests
// construct it directly and serve the routes from httptest.
type serverConfig struct {
	graph        *cypher.Graph
	role         string
	parallelism  int
	queryTimeout time.Duration // server-wide cap; requests may tighten, never loosen
	memoryBudget int64         // server-wide cap, same convention
	maxInflight  int           // 0 = no admission control
	queueDepth   int
	queueWait    time.Duration
	slowQuery    time.Duration // 0 = slow-query log disabled
}

type server struct {
	cfg     serverConfig
	graph   *cypher.Graph
	role    string
	started time.Time
	adm     *admission
}

func newServer(cfg serverConfig) *server {
	return &server{
		cfg:     cfg,
		graph:   cfg.graph,
		role:    cfg.role,
		started: time.Now(),
		adm:     newAdmission(cfg.maxInflight, cfg.queueDepth, cfg.queueWait),
	}
}

// routes builds the API mux (everything except the leader's /repl mount,
// which main attaches because only a durable leader has one).
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/admin/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/admin/resync", s.handleResync)
	return mux
}

// admission is the server's query gate: at most maxInflight queries execute
// at once, at most queueDepth more wait (bounded by queueWait) for a slot.
// Beyond that the server sheds load with 429/503 instead of stacking
// goroutines until memory runs out.
type admission struct {
	slots    chan struct{} // buffered to maxInflight; a held token = an executing query
	queueCap int64
	wait     time.Duration

	queued            atomic.Int64
	admitted          atomic.Uint64
	rejectedQueueFull atomic.Uint64
	rejectedWait      atomic.Uint64
}

func newAdmission(maxInflight, queueDepth int, wait time.Duration) *admission {
	if maxInflight <= 0 {
		return nil
	}
	return &admission{
		slots:    make(chan struct{}, maxInflight),
		queueCap: int64(queueDepth),
		wait:     wait,
	}
}

// admissionError is a load-shedding decision: the HTTP status to answer with
// and how long the client should back off before retrying.
type admissionError struct {
	status     int
	retryAfter time.Duration
	msg        string
}

func (e *admissionError) Error() string { return e.msg }

// acquire blocks until the query may run. On admission it returns the
// release func the caller must defer; otherwise an *admissionError (or the
// client's own cancellation). A nil admission admits everything.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	if a == nil {
		return func() {}, nil
	}
	release := func() { <-a.slots }
	// Fast path: a free slot means no queueing accounting at all.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return release, nil
	default:
	}
	if n := a.queued.Add(1); n > a.queueCap {
		a.queued.Add(-1)
		a.rejectedQueueFull.Add(1)
		return nil, &admissionError{
			status:     http.StatusTooManyRequests,
			retryAfter: a.wait,
			msg:        fmt.Sprintf("admission queue full (%d executing, %d queued)", cap(a.slots), a.queueCap),
		}
	}
	defer a.queued.Add(-1)
	t := time.NewTimer(a.wait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return release, nil
	case <-t.C:
		a.rejectedWait.Add(1)
		return nil, &admissionError{
			status:     http.StatusServiceUnavailable,
			retryAfter: a.wait,
			msg:        fmt.Sprintf("server saturated: no execution slot freed within %v", a.wait),
		}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

type queryRequest struct {
	Query  string         `json:"query"`
	Params map[string]any `json:"params"`
	// TimeoutMs and MemoryBudget are per-request governance overrides. They
	// tighten the server's -query-timeout / -memory-budget caps but can
	// never exceed them; negative values are rejected.
	TimeoutMs    int64 `json:"timeoutMs"`
	MemoryBudget int64 `json:"memoryBudget"`
}

type queryResponse struct {
	Columns     []string `json:"columns"`
	Rows        [][]any  `json:"rows"`
	Count       int      `json:"count"`
	ReadOnly    bool     `json:"readOnly"`
	Parallelism int      `json:"parallelism"`
	TimeMs      float64  `json:"timeMs"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON body {\"query\": ..., \"params\": ...}")
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, "missing \"query\"")
		return
	}
	if req.TimeoutMs < 0 || req.MemoryBudget < 0 {
		httpError(w, http.StatusBadRequest, "timeoutMs and memoryBudget must be non-negative")
		return
	}

	release, err := s.adm.acquire(r.Context())
	if err != nil {
		var ae *admissionError
		if errors.As(err, &ae) {
			w.Header().Set("Retry-After", fmt.Sprint(int(ae.retryAfter.Seconds()+1)))
			httpError(w, ae.status, "%v", ae)
		}
		// Otherwise the client hung up while queued; nobody is listening.
		return
	}
	defer release()

	qopts := cypher.QueryOptions{
		Timeout:      tighten(time.Duration(req.TimeoutMs)*time.Millisecond, s.cfg.queryTimeout),
		MemoryBudget: tightenBytes(req.MemoryBudget, s.cfg.memoryBudget),
	}
	start := time.Now()
	res, err := s.graph.QueryContext(r.Context(), req.Query, req.Params, qopts)
	elapsed := time.Since(start)
	if s.cfg.slowQuery > 0 && elapsed >= s.cfg.slowQuery {
		log.Printf("slow query (%.1fms, err=%v): %s", float64(elapsed.Microseconds())/1000, err, req.Query)
	}
	if err != nil {
		s.writeQueryError(w, r, err)
		return
	}
	if !res.ReadOnly() {
		// In clustered mode a write response must mean majority-committed:
		// wait for a quorum of followers to durably acknowledge the entry
		// before answering 200. Non-clustered graphs return immediately.
		if err := s.graph.WaitReplicated(r.Context()); err != nil {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
	}
	rows := res.Rows()
	out := queryResponse{
		Columns:     res.Columns(),
		Rows:        make([][]any, len(rows)),
		Count:       len(rows),
		ReadOnly:    res.ReadOnly(),
		Parallelism: res.Parallelism(),
		TimeMs:      float64(elapsed.Microseconds()) / 1000,
	}
	for i, row := range rows {
		conv := make([]any, len(row))
		for j, v := range row {
			conv[j] = jsonValue(v)
		}
		out.Rows[i] = conv
	}
	writeJSON(w, http.StatusOK, out)
}

// tighten resolves a per-request timeout against the server-wide cap:
// requests may tighten governance but never loosen it. Zero request means
// "inherit the cap" (QueryOptions zero = inherit the graph default, which is
// the same -query-timeout value).
func tighten(req, cap time.Duration) time.Duration {
	if req <= 0 {
		return 0
	}
	if cap > 0 && req > cap {
		return cap
	}
	return req
}

// tightenBytes is tighten for memory budgets.
func tightenBytes(req, cap int64) int64 {
	if req <= 0 {
		return 0
	}
	if cap > 0 && req > cap {
		return cap
	}
	return req
}

// writeQueryError maps engine failures onto HTTP statuses so clients and
// load balancers can tell governance outcomes apart:
//
//	307  follower rejected a write; retry the POST at the leader
//	408  the client itself went away mid-query
//	422  the query is invalid (parse/plan/runtime error)
//	500  an operator panicked; the query died, the server did not
//	503  no leader right now (election in progress, or the leader lost its
//	     quorum lease); back off per Retry-After and retry
//	504  the query hit its deadline
//	507  the query hit its memory budget
func (s *server) writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	var ro *cypher.ReadOnlyReplicaError
	var exhausted *cypher.ResourceExhaustedError
	var panicked *cypher.QueryPanicError
	var canceled *cypher.QueryCanceledError
	switch {
	case errors.As(err, &ro):
		if ro.Leader == "" {
			// Leaderless window: mid-election, or a degraded leader that
			// cannot prove its writes commit. The condition is transient, so
			// shed the write instead of redirecting nowhere.
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "no leader right now, retry shortly: %v", err)
			return
		}
		// 307 preserves the method and body, so a client that follows
		// redirects replays the same POST at the leader.
		w.Header().Set("Location", ro.Leader+"/query")
		httpError(w, http.StatusTemporaryRedirect, "%v", err)
	case errors.As(err, &exhausted):
		httpError(w, http.StatusInsufficientStorage, "%v", err)
	case errors.As(err, &panicked):
		// The panic is contained to the query; log the stack server-side,
		// return only the summary.
		log.Printf("query panic contained: %v\n%s", err, panicked.Stack)
		httpError(w, http.StatusInternalServerError, "%v", err)
	case errors.As(err, &canceled):
		if errors.Is(err, context.DeadlineExceeded) {
			httpError(w, http.StatusGatewayTimeout, "%v", err)
		} else {
			// The request context is the only cancellation source wired in,
			// so a plain cancel means the client disconnected mid-query.
			httpError(w, http.StatusRequestTimeout, "%v", err)
		}
	default:
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
	}
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing ?q=<query>")
		return
	}
	plan, err := s.graph.Explain(q)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": q, "plan": plan})
}

// handleHealthz reports liveness plus the node's replication position: role,
// the last applied WAL offset and — on a follower — lag behind the leader.
// A failed follower (unrecoverable divergence) answers 503 so load balancers
// stop routing reads to a stale replica.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	gov := s.graph.GovernanceStats()
	out := map[string]any{
		"status":   "ok",
		"role":     s.role,
		"inFlight": gov.InFlight,
	}
	if s.adm != nil {
		out["queued"] = s.adm.queued.Load()
	}
	status := http.StatusOK
	if rs, ok := s.graph.ReplicationStats(); ok {
		out["state"] = rs.State
		out["position"] = rs.Local
		if s.role == "cluster" {
			// Clustered nodes report their live election view: the current
			// term, which role this node holds right now, and the leader it
			// recognizes — the failover harness and load balancers key off
			// these.
			out["role"] = rs.Role
			out["term"] = rs.Term
			out["leader"] = rs.ClusterLeader
		}
		if rs.Role == "follower" || rs.Role == "candidate" {
			out["lagEntries"] = rs.LagEntries
			out["lagBytes"] = rs.LagBytes
			if rs.State == "failed" {
				out["status"] = "failed"
				out["error"] = rs.LastError
				status = http.StatusServiceUnavailable
			}
		}
	} else if ds, ok := s.graph.DurabilityStats(); ok {
		out["position"] = map[string]any{"gen": ds.Generation, "offset": ds.WALSizeBytes}
	}
	writeJSON(w, status, out)
}

// handleCheckpoint forces a snapshot + WAL truncation. Exposed so operators
// (and the replication CI harness) can push the stream past a stopped
// follower's position on demand.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST to checkpoint")
		return
	}
	if s.role == "follower" {
		httpError(w, http.StatusForbidden, "a follower does not checkpoint; its log mirrors the leader's")
		return
	}
	if s.role == "cluster" {
		if rs, ok := s.graph.ReplicationStats(); !ok || rs.Role != "leader" {
			httpError(w, http.StatusForbidden, "only the elected leader checkpoints; this node is a %s", rs.Role)
			return
		}
	}
	if _, ok := s.graph.DurabilityStats(); !ok {
		httpError(w, http.StatusConflict, "not a durable graph (start with -data)")
		return
	}
	if err := s.graph.Checkpoint(); err != nil {
		httpError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	ds, _ := s.graph.DurabilityStats()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "generation": ds.Generation})
}

// handleResync recovers a fail-stopped follower in place: the parked stream
// tailer discards its divergent local state and catches up from a fresh
// leader snapshot, without restarting the process or touching the data
// directory by hand. 409 on nodes that are not currently followers.
func (s *server) handleResync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST to resync")
		return
	}
	if err := s.graph.Resync(); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	out := map[string]any{"status": "resync requested"}
	if rs, ok := s.graph.ReplicationStats(); ok {
		out["state"] = rs.State
		out["forcedResyncs"] = rs.ForcedResyncs
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	gs := s.graph.Stats()
	cs := s.graph.PlanCacheStats()
	ms := s.graph.MVCCStats()
	durability := map[string]any{"enabled": false}
	if ds, ok := s.graph.DurabilityStats(); ok {
		durability = map[string]any{
			"enabled":          true,
			"dir":              ds.Dir,
			"syncMode":         ds.SyncMode,
			"generation":       ds.Generation,
			"walRecords":       ds.Records,
			"walBatches":       ds.Batches,
			"walBytes":         ds.Bytes,
			"walSizeBytes":     ds.WALSizeBytes,
			"fsyncs":           ds.Syncs,
			"checkpoints":      ds.Checkpoints,
			"recoveredRecords": ds.Recovery.SnapshotRecords + ds.Recovery.WALRecords,
			"recoveredTorn":    ds.Recovery.TornTail,
		}
		if !ds.LastCheckpoint.IsZero() {
			durability["lastCheckpoint"] = ds.LastCheckpoint.UTC().Format(time.RFC3339)
		}
	}
	indexes := make([]map[string]any, 0, len(gs.Indexes))
	for _, is := range gs.Indexes {
		sel := 1.0
		if is.DistinctKeys > 0 {
			sel = 1.0 / float64(is.DistinctKeys)
		}
		indexes = append(indexes, map[string]any{
			"label":        is.Label,
			"property":     is.Property,
			"entries":      is.Entries,
			"distinctKeys": is.DistinctKeys,
			"selectivity":  sel,
		})
	}
	replication := map[string]any{"enabled": false, "role": s.role}
	if rs, ok := s.graph.ReplicationStats(); ok {
		replication = map[string]any{
			"enabled":  true,
			"role":     rs.Role,
			"state":    rs.State,
			"position": rs.Local,
		}
		if s.role == "cluster" {
			replication["term"] = rs.Term
			replication["leader"] = rs.ClusterLeader
			replication["quorumSize"] = rs.QuorumSize
			replication["ackedPeers"] = rs.AckedPeers
			replication["elections"] = rs.Elections
			replication["forcedResyncs"] = rs.ForcedResyncs
		}
		switch rs.Role {
		case "leader":
			followers := make([]map[string]any, 0, len(rs.Followers))
			for _, fs := range rs.Followers {
				followers = append(followers, map[string]any{
					"remote":         fs.Remote,
					"sent":           fs.Sent,
					"connectedSince": fs.ConnectedSince.UTC().Format(time.RFC3339),
				})
			}
			replication["advertise"] = rs.Advertise
			replication["followers"] = followers
			replication["streamedEntries"] = rs.StreamedEntries
			replication["streamedBytes"] = rs.StreamedBytes
			replication["snapshotsServed"] = rs.SnapshotsServed
		case "follower":
			replication["leader"] = rs.Leader
			replication["leaderPosition"] = rs.LeaderPos
			replication["lagEntries"] = rs.LagEntries
			replication["lagBytes"] = rs.LagBytes
			replication["appliedBatches"] = rs.AppliedBatches
			replication["appliedRecords"] = rs.AppliedRecords
			replication["appliedBytes"] = rs.AppliedBytes
			replication["snapshotCatchups"] = rs.SnapshotCatchups
			replication["reconnects"] = rs.Reconnects
			replication["lastError"] = rs.LastError
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"durability":  durability,
		"replication": replication,
		"graph": map[string]any{
			"nodes":         gs.Nodes,
			"relationships": gs.Relationships,
			"labels":        gs.Labels,
			"types":         gs.Types,
			"averageDegree": gs.AverageDegree,
			"indexes":       indexes,
		},
		"planCache": map[string]any{
			"entries":       cs.Entries,
			"hits":          cs.Hits,
			"misses":        cs.Misses,
			"invalidations": cs.Invalidations,
		},
		"mvcc": map[string]any{
			"enabled":          ms.Enabled,
			"versions":         ms.Versions,
			"publishedEpoch":   ms.PublishedEpoch,
			"liveEpoch":        ms.LiveEpoch,
			"activePins":       ms.ActivePins,
			"pins":             ms.Pins,
			"publishes":        ms.Publishes,
			"writerDrainWaits": ms.WriterDrainWaits,
			"rebuilds":         ms.Rebuilds,
			"backlogLength":    ms.BacklogLen,
		},
		"governance": s.governance(),
		"execution": map[string]any{
			"parallelism": s.cfg.parallelism,
			"cpus":        runtime.NumCPU(),
		},
		"uptimeSeconds": time.Since(s.started).Seconds(),
	})
}

// governance merges the engine's per-query counters with the serving layer's
// admission numbers into one /stats section.
func (s *server) governance() map[string]any {
	gov := s.graph.GovernanceStats()
	out := map[string]any{
		"inFlight":         gov.InFlight,
		"canceled":         gov.Canceled,
		"deadlineExceeded": gov.DeadlineExceeded,
		"memoryExhausted":  gov.MemoryExhausted,
		"panicsRecovered":  gov.PanicsRecovered,
		"peakQueryBytes":   gov.PeakQueryBytes,
		"queryTimeout":     s.cfg.queryTimeout.String(),
		"memoryBudget":     s.cfg.memoryBudget,
		"slowQueryLog":     s.cfg.slowQuery > 0,
		"admission":        map[string]any{"enabled": false},
	}
	if s.adm != nil {
		out["admission"] = map[string]any{
			"enabled":           true,
			"maxInflight":       cap(s.adm.slots),
			"queueDepth":        s.adm.queueCap,
			"queueWait":         s.adm.wait.String(),
			"queued":            s.adm.queued.Load(),
			"admitted":          s.adm.admitted.Load(),
			"rejectedQueueFull": s.adm.rejectedQueueFull.Load(),
			"rejectedWait":      s.adm.rejectedWait.Load(),
		}
	}
	return out
}

// jsonValue converts a native Go result value (as produced by Result.Rows)
// into something json.Marshal renders faithfully: graph entities become
// explicit objects rather than opaque interface views.
func jsonValue(v any) any {
	switch t := v.(type) {
	case cypher.Node:
		return map[string]any{
			"id":         t.ID(),
			"labels":     t.Labels(),
			"properties": entityProps(t.PropertyKeys(), t.Property),
		}
	case cypher.Relationship:
		return map[string]any{
			"id":         t.ID(),
			"type":       t.RelType(),
			"start":      t.StartNodeID(),
			"end":        t.EndNodeID(),
			"properties": entityProps(t.PropertyKeys(), t.Property),
		}
	case cypher.Path:
		nodes := make([]any, len(t.Nodes))
		for i, n := range t.Nodes {
			nodes[i] = jsonValue(n)
		}
		rels := make([]any, len(t.Rels))
		for i, rel := range t.Rels {
			rels[i] = jsonValue(rel)
		}
		return map[string]any{"nodes": nodes, "relationships": rels}
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = jsonValue(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = jsonValue(e)
		}
		return out
	default:
		return v
	}
}

func entityProps(keys []string, get func(string) cypher.Value) map[string]any {
	out := make(map[string]any, len(keys))
	for _, k := range keys {
		out[k] = jsonValue(value.ToGo(get(k)))
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}
