// Command cypher-serve exposes a cypher.Graph over HTTP so many clients can
// query one in-memory property graph concurrently. The engine classifies
// each query as read-only or mutating at parse time: read-only queries run
// in parallel under a shared lock while mutating queries serialize, and
// compiled plans are cached per query text until a mutation invalidates
// them, so a hot read workload skips parsing and planning entirely.
//
// Endpoints:
//
//	POST /query    {"query": "...", "params": {...}} -> columns, rows, summary
//	GET  /explain  ?q=<query>                        -> the compiled plan
//	GET  /stats                                      -> graph + plan-cache stats
//	GET  /healthz                                    -> 200 once serving
//
// Example:
//
//	cypher-serve -addr :7474 -dataset social -size 10000
//	curl -s localhost:7474/query -d '{"query": "MATCH (p:Person) RETURN count(*) AS c"}'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	cypher "repro"
	"repro/internal/datasets"
	"repro/internal/value"
)

func main() {
	var (
		addr        = flag.String("addr", ":7474", "listen address")
		dataset     = flag.String("dataset", "empty", "initial dataset: empty, citations, social, datacenter, fraud")
		size        = flag.Int("size", 1000, "size parameter for the synthetic datasets")
		parallelism = flag.Int("parallelism", 1, "workers per read query (morsel-driven; 1 = serial, 0 = all CPUs)")
	)
	flag.Parse()

	if *parallelism <= 0 {
		*parallelism = runtime.NumCPU()
	}
	g, err := buildGraph(*dataset, *size, *parallelism)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	s := g.Stats()
	log.Printf("serving %s dataset (%d nodes, %d relationships) on %s, per-query parallelism %d",
		*dataset, s.Nodes, s.Relationships, *addr, *parallelism)

	mux := http.NewServeMux()
	srv := &server{graph: g, started: time.Now(), parallelism: *parallelism}
	mux.HandleFunc("/query", srv.handleQuery)
	mux.HandleFunc("/explain", srv.handleExplain)
	mux.HandleFunc("/stats", srv.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func buildGraph(dataset string, size, parallelism int) (*cypher.Graph, error) {
	opts := cypher.Options{Parallelism: parallelism}
	switch dataset {
	case "", "empty":
		return cypher.NewWithOptions(opts), nil
	case "citations":
		store, _ := datasets.Citations()
		return cypher.Wrap(store, opts), nil
	case "social":
		store := datasets.SocialNetwork(datasets.SocialConfig{People: size, FriendsEach: 8, Seed: 42})
		return cypher.Wrap(store, opts), nil
	case "datacenter":
		store := datasets.DataCenter(datasets.DataCenterConfig{Services: size, MaxDeps: 3, Seed: 5})
		return cypher.Wrap(store, opts), nil
	case "fraud":
		store := datasets.FraudNetwork(datasets.FraudConfig{AccountHolders: size, SharingFraction: 0.15, Seed: 5})
		return cypher.Wrap(store, opts), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want empty, citations, social, datacenter or fraud)", dataset)
	}
}

type server struct {
	graph       *cypher.Graph
	started     time.Time
	parallelism int
}

type queryRequest struct {
	Query  string         `json:"query"`
	Params map[string]any `json:"params"`
}

type queryResponse struct {
	Columns     []string `json:"columns"`
	Rows        [][]any  `json:"rows"`
	Count       int      `json:"count"`
	ReadOnly    bool     `json:"readOnly"`
	Parallelism int      `json:"parallelism"`
	TimeMs      float64  `json:"timeMs"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON body {\"query\": ..., \"params\": ...}")
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, "missing \"query\"")
		return
	}
	start := time.Now()
	res, err := s.graph.Run(req.Query, req.Params)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	elapsed := time.Since(start)
	rows := res.Rows()
	out := queryResponse{
		Columns:     res.Columns(),
		Rows:        make([][]any, len(rows)),
		Count:       len(rows),
		ReadOnly:    res.ReadOnly(),
		Parallelism: res.Parallelism(),
		TimeMs:      float64(elapsed.Microseconds()) / 1000,
	}
	for i, row := range rows {
		conv := make([]any, len(row))
		for j, v := range row {
			conv[j] = jsonValue(v)
		}
		out.Rows[i] = conv
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing ?q=<query>")
		return
	}
	plan, err := s.graph.Explain(q)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": q, "plan": plan})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	gs := s.graph.Stats()
	cs := s.graph.PlanCacheStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"graph": map[string]any{
			"nodes":         gs.Nodes,
			"relationships": gs.Relationships,
			"labels":        gs.Labels,
			"types":         gs.Types,
		},
		"planCache": map[string]any{
			"entries":       cs.Entries,
			"hits":          cs.Hits,
			"misses":        cs.Misses,
			"invalidations": cs.Invalidations,
		},
		"execution": map[string]any{
			"parallelism": s.parallelism,
			"cpus":        runtime.NumCPU(),
		},
		"uptimeSeconds": time.Since(s.started).Seconds(),
	})
}

// jsonValue converts a native Go result value (as produced by Result.Rows)
// into something json.Marshal renders faithfully: graph entities become
// explicit objects rather than opaque interface views.
func jsonValue(v any) any {
	switch t := v.(type) {
	case cypher.Node:
		return map[string]any{
			"id":         t.ID(),
			"labels":     t.Labels(),
			"properties": entityProps(t.PropertyKeys(), t.Property),
		}
	case cypher.Relationship:
		return map[string]any{
			"id":         t.ID(),
			"type":       t.RelType(),
			"start":      t.StartNodeID(),
			"end":        t.EndNodeID(),
			"properties": entityProps(t.PropertyKeys(), t.Property),
		}
	case cypher.Path:
		nodes := make([]any, len(t.Nodes))
		for i, n := range t.Nodes {
			nodes[i] = jsonValue(n)
		}
		rels := make([]any, len(t.Rels))
		for i, rel := range t.Rels {
			rels[i] = jsonValue(rel)
		}
		return map[string]any{"nodes": nodes, "relationships": rels}
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = jsonValue(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = jsonValue(e)
		}
		return out
	default:
		return v
	}
}

func entityProps(keys []string, get func(string) cypher.Value) map[string]any {
	out := make(map[string]any, len(keys))
	for _, k := range keys {
		out[k] = jsonValue(value.ToGo(get(k)))
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}
