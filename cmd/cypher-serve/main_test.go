package main

// Serving-layer governance tests: admission control's 429/503 load shedding,
// the HTTP status mapping for governed query failures, the /stats governance
// section, and client-disconnect hygiene over a real HTTP connection.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	cypher "repro"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/value"
)

// testGraph builds a 20k-node graph: big enough that an unfiltered cross
// product (4e8 pairs) cannot finish inside test time.
func testGraph(t *testing.T, opts cypher.Options) *cypher.Graph {
	t.Helper()
	store := graph.New()
	for i := 0; i < 20_000; i++ {
		store.CreateNode([]string{"S"}, map[string]value.Value{"i": value.NewInt(int64(i))})
	}
	return cypher.Wrap(store, opts)
}

const serveUnbounded = `MATCH (a), (b) WHERE a.i + b.i = -1 RETURN count(*)`

func postQuery(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %d response: %v", resp.StatusCode, err)
	}
	return resp, out
}

func TestAdmissionQueueFullAnswers429(t *testing.T) {
	srv := newServer(serverConfig{
		graph:       testGraph(t, cypher.Options{}),
		role:        "single",
		maxInflight: 1,
		queueDepth:  0,
		queueWait:   time.Second,
	})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// Occupy the only slot directly: deterministic, no racing goroutines.
	srv.adm.slots <- struct{}{}
	defer func() { <-srv.adm.slots }()

	resp, out := postQuery(t, ts, `{"query": "RETURN 1"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %v)", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}
	if srv.adm.rejectedQueueFull.Load() != 1 {
		t.Errorf("rejectedQueueFull = %d", srv.adm.rejectedQueueFull.Load())
	}
}

func TestAdmissionWaitDeadlineAnswers503(t *testing.T) {
	srv := newServer(serverConfig{
		graph:       testGraph(t, cypher.Options{}),
		role:        "single",
		maxInflight: 1,
		queueDepth:  1,
		queueWait:   25 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	srv.adm.slots <- struct{}{}
	defer func() { <-srv.adm.slots }()

	start := time.Now()
	resp, out := postQuery(t, ts, `{"query": "RETURN 1"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %v)", resp.StatusCode, out)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("rejected after %v, before the queue wait elapsed", elapsed)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 without Retry-After")
	}
	// Once the slot frees, the same server admits again.
	<-srv.adm.slots
	resp, _ = postQuery(t, ts, `{"query": "RETURN 1"}`)
	srv.adm.slots <- struct{}{} // restore for the deferred release
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200", resp.StatusCode)
	}
}

func TestQueryErrorStatusMapping(t *testing.T) {
	eval.RegisterFunction("servetest_boom", func([]value.Value) (value.Value, error) {
		panic("operator bug")
	})
	srv := newServer(serverConfig{
		graph:        testGraph(t, cypher.Options{}),
		role:         "single",
		queryTimeout: time.Minute, // server cap; requests tighten below
	})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	cases := []struct {
		name, body string
		want       int
	}{
		{"ok", `{"query": "RETURN 1"}`, http.StatusOK},
		{"parse error", `{"query": "MATCH ("}`, http.StatusUnprocessableEntity},
		{"deadline", fmt.Sprintf(`{"query": %q, "timeoutMs": 50}`, serveUnbounded), http.StatusGatewayTimeout},
		{"memory", `{"query": "MATCH (n) RETURN n.i ORDER BY n.i", "memoryBudget": 4096}`, http.StatusInsufficientStorage},
		{"panic", `{"query": "RETURN servetest_boom()"}`, http.StatusInternalServerError},
		{"negative override", `{"query": "RETURN 1", "timeoutMs": -5}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, out := postQuery(t, ts, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d (body %v)", resp.StatusCode, tc.want, out)
			}
		})
	}
	// All failures stayed inside their queries: the engine still serves.
	resp, _ := postQuery(t, ts, `{"query": "MATCH (n) RETURN count(n)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("engine unusable after governed failures: %d", resp.StatusCode)
	}
	if pins := srv.graph.MVCCStats().ActivePins; pins != 0 {
		t.Errorf("leaked pins after governed failures: %d", pins)
	}
}

func TestClientDisconnectMidQuery(t *testing.T) {
	srv := newServer(serverConfig{
		graph: testGraph(t, cypher.Options{Parallelism: 4}),
		role:  "single",
	})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query",
		bytes.NewReader([]byte(fmt.Sprintf(`{"query": %q}`, serveUnbounded))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	// Give the query time to start, then hang up.
	time.Sleep(100 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("request succeeded despite cancellation")
	}

	// The server must notice promptly and release everything.
	deadline := time.Now().Add(3 * time.Second)
	for srv.graph.GovernanceStats().Canceled == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if gs := srv.graph.GovernanceStats(); gs.Canceled == 0 {
		t.Errorf("Canceled counter = 0 after client disconnect")
	}
	for srv.graph.MVCCStats().ActivePins != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if pins := srv.graph.MVCCStats().ActivePins; pins != 0 {
		t.Errorf("ActivePins = %d after disconnect", pins)
	}
	resp, _ := postQuery(t, ts, `{"query": "MATCH (n) RETURN count(n)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("engine unusable after disconnect: %d", resp.StatusCode)
	}
}

func TestStatsGovernanceSection(t *testing.T) {
	srv := newServer(serverConfig{
		graph:        testGraph(t, cypher.Options{}),
		role:         "single",
		queryTimeout: 30 * time.Second,
		memoryBudget: 1 << 20,
		maxInflight:  8,
		queueDepth:   16,
		queueWait:    time.Second,
	})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// Drive each governed failure mode once so the counters are non-zero.
	postQuery(t, ts, fmt.Sprintf(`{"query": %q, "timeoutMs": 20}`, serveUnbounded))
	postQuery(t, ts, `{"query": "MATCH (n) RETURN n.i ORDER BY n.i", "memoryBudget": 4096}`)
	postQuery(t, ts, `{"query": "RETURN 1"}`)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Governance struct {
			InFlight         int64 `json:"inFlight"`
			DeadlineExceeded uint64
			MemoryExhausted  uint64
			PeakQueryBytes   int64
			Admission        struct {
				Enabled     bool
				MaxInflight int
				Admitted    uint64
			}
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	gov := out.Governance
	if gov.DeadlineExceeded == 0 || gov.MemoryExhausted == 0 {
		t.Errorf("governed failures not counted: %+v", gov)
	}
	if gov.PeakQueryBytes <= 0 {
		t.Errorf("peakQueryBytes = %d", gov.PeakQueryBytes)
	}
	if gov.InFlight != 0 {
		t.Errorf("inFlight = %d on an idle server", gov.InFlight)
	}
	if !gov.Admission.Enabled || gov.Admission.MaxInflight != 8 || gov.Admission.Admitted < 3 {
		t.Errorf("admission stats = %+v", gov.Admission)
	}

	// /healthz carries the live-query summary too.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if _, ok := hz["inFlight"]; !ok {
		t.Errorf("/healthz missing inFlight: %v", hz)
	}
	if _, ok := hz["queued"]; !ok {
		t.Errorf("/healthz missing queued: %v", hz)
	}
}
