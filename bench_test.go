package cypher

// Benchmark harness for the experiments B1-B9 listed in DESIGN.md and
// EXPERIMENTS.md. The paper's evaluation is a semantics (not a performance)
// study, so these benchmarks characterise the operators and design choices
// the paper describes: the Expand operator over native adjacency,
// variable-length expansion, aggregation, OPTIONAL MATCH, scan selection,
// matching morphisms, parser/planner latency, the end-to-end industry
// queries of Section 3, and the optimised engine versus the literal
// reference semantics.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/planner"
	"repro/internal/refsem"
	"repro/internal/storage"
	"repro/internal/value"
)

func benchGraph(people, friends int) *Graph {
	g := datasets.SocialNetwork(datasets.SocialConfig{People: people, FriendsEach: friends, Seed: 42})
	return Wrap(g, Options{})
}

func runBenchQuery(b *testing.B, g *Graph, query string, params map[string]any) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(query, params); err != nil {
			b.Fatal(err)
		}
	}
}

// --- B1: Expand scaling (the paper's index-free adjacency argument) ---

func BenchmarkExpand(b *testing.B) {
	for _, size := range []int{1000, 10000} {
		for _, deg := range []int{4, 16} {
			b.Run(fmt.Sprintf("nodes=%d/degree=%d", size, deg), func(b *testing.B) {
				g := benchGraph(size, deg)
				runBenchQuery(b, g, "MATCH (a:Person {name: 'person-17'})-[:KNOWS]->(b) RETURN count(b) AS c", nil)
			})
		}
	}
}

func BenchmarkExpandTwoHops(b *testing.B) {
	g := benchGraph(5000, 8)
	runBenchQuery(b, g, "MATCH (a:Person {name: 'person-17'})-[:KNOWS]->()-[:KNOWS]->(c) RETURN count(c) AS c", nil)
}

// --- B2: variable-length expansion depth sweep ---

func BenchmarkVarLengthExpand(b *testing.B) {
	g := benchGraph(2000, 4)
	for _, depth := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			q := fmt.Sprintf("MATCH (a:Person {name: 'person-17'})-[:KNOWS*1..%d]->(c) RETURN count(c) AS c", depth)
			runBenchQuery(b, g, q, nil)
		})
	}
}

func BenchmarkVarLengthUnbounded(b *testing.B) {
	g := Wrap(datasets.DataCenter(datasets.DataCenterConfig{Services: 300, MaxDeps: 2, Seed: 3}), Options{})
	runBenchQuery(b, g, "MATCH (s:Service {name: 'svc-0'})<-[:DEPENDS_ON*]-(d:Service) RETURN count(DISTINCT d) AS c", nil)
}

// --- B3: aggregation / grouping cardinality sweep ---

func BenchmarkAggregate(b *testing.B) {
	g := benchGraph(20000, 2)
	cases := []struct {
		name  string
		query string
	}{
		{"global-count", "MATCH (p:Person) RETURN count(*) AS c"},
		{"group-by-age", "MATCH (p:Person) RETURN p.age AS age, count(*) AS c"},
		{"collect-names", "MATCH (p:Person) RETURN p.age AS age, collect(p.name) AS names"},
		{"distinct-count", "MATCH (p:Person)-[:KNOWS]->(q) RETURN p.age AS age, count(DISTINCT q.age) AS c"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { runBenchQuery(b, g, c.query, nil) })
	}
}

// --- B4: OPTIONAL MATCH with varying match fraction ---

func BenchmarkOptionalMatch(b *testing.B) {
	for _, friends := range []int{0, 2, 8} {
		b.Run(fmt.Sprintf("friends=%d", friends), func(b *testing.B) {
			store := datasets.SocialNetwork(datasets.SocialConfig{People: 5000, FriendsEach: friends, Seed: 1})
			g := Wrap(store, Options{})
			runBenchQuery(b, g, "MATCH (p:Person) OPTIONAL MATCH (p)-[:KNOWS]->(q) RETURN count(q) AS c", nil)
		})
	}
}

// --- B5: label scan vs all-nodes scan vs index seek (ablation) ---

func BenchmarkLabelScanVsAllNodes(b *testing.B) {
	store := graph.New()
	for i := 0; i < 20000; i++ {
		label := "Filler"
		if i%100 == 0 {
			label = "Rare"
		}
		store.CreateNode([]string{label}, map[string]value.Value{"i": value.NewInt(int64(i))})
	}
	g := Wrap(store, Options{})
	b.Run("label-scan", func(b *testing.B) {
		runBenchQuery(b, g, "MATCH (n:Rare) RETURN count(n) AS c", nil)
	})
	b.Run("all-nodes-filter", func(b *testing.B) {
		// Force an all-nodes scan by filtering on the label in WHERE instead.
		runBenchQuery(b, g, "MATCH (n) WHERE n:Rare RETURN count(n) AS c", nil)
	})
	store.CreateIndex("Rare", "i")
	b.Run("index-seek", func(b *testing.B) {
		runBenchQuery(b, g, "MATCH (n:Rare {i: 1300}) RETURN count(n) AS c", nil)
	})
	b.Run("label-scan-property-filter", func(b *testing.B) {
		runBenchQuery(b, g, "MATCH (n:Rare) WHERE n.i = 1300 RETURN count(n) AS c", nil)
	})
}

// --- B6: matching morphism ablation (Section 8 "configurable morphisms") ---

func BenchmarkMorphism(b *testing.B) {
	store := datasets.SocialNetwork(datasets.SocialConfig{People: 300, FriendsEach: 4, Seed: 11})
	query := "MATCH (a:Person)-[:KNOWS*2..3]->(b) RETURN count(*) AS c"
	for _, m := range []struct {
		name string
		mode Morphism
	}{
		{"edge-isomorphism", EdgeIsomorphism},
		{"homomorphism", Homomorphism},
		{"node-isomorphism", NodeIsomorphism},
	} {
		b.Run(m.name, func(b *testing.B) {
			g := Wrap(store, Options{Morphism: m.mode, MaxVarLengthDepth: 3})
			runBenchQuery(b, g, query, nil)
		})
	}
}

// --- B7: parser and planner latency over a query corpus ---

var benchCorpus = []string{
	"MATCH (r:Researcher) RETURN r.name",
	"MATCH (r:Researcher)-[:AUTHORS]->(p:Publication) WHERE p.acmid > 200 RETURN r.name, count(p) AS pubs ORDER BY pubs DESC LIMIT 10",
	"MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service) RETURN svc, count(DISTINCT dep) AS dependents ORDER BY dependents DESC LIMIT 1",
	"MATCH (a)-[:HAS]->(p) WHERE p:SSN OR p:PhoneNumber WITH p, collect(a.uniqueId) AS hs, count(*) AS c WHERE c > 1 RETURN hs, labels(p), c",
	"UNWIND range(1, 100) AS x WITH x WHERE x % 3 = 0 RETURN x, x * x AS sq ORDER BY sq DESC SKIP 2 LIMIT 5",
	"MATCH p = (a:Person {name: 'x'})-[:KNOWS*1..3]->(b:Person) RETURN [n IN nodes(p) | n.name] AS names, length(p) AS len",
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, q := range benchCorpus {
			if _, err := parser.Parse(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

type planInput struct {
	q      string
	parsed *ast.Query
}

func BenchmarkPlan(b *testing.B) {
	store, _ := datasets.Citations()
	asts := make([]planInput, 0, len(benchCorpus))
	for _, q := range benchCorpus {
		parsed, err := parser.Parse(q)
		if err != nil {
			b.Fatal(err)
		}
		asts = append(asts, planInput{q: q, parsed: parsed})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := planner.New(store)
		for _, in := range asts {
			if _, err := p.Plan(in.parsed); err != nil {
				b.Fatalf("%s: %v", in.q, err)
			}
		}
	}
}

// --- B8: end-to-end industry queries at three scales ---

func BenchmarkIndustryDataCenter(b *testing.B) {
	for _, services := range []int{100, 500, 2000} {
		b.Run(fmt.Sprintf("services=%d", services), func(b *testing.B) {
			store := datasets.DataCenter(datasets.DataCenterConfig{Services: services, MaxDeps: 3, Seed: 5})
			g := Wrap(store, Options{})
			runBenchQuery(b, g, `
				MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
				RETURN svc, count(DISTINCT dep) AS dependents
				ORDER BY dependents DESC
				LIMIT 1`, nil)
		})
	}
}

func BenchmarkIndustryFraudRing(b *testing.B) {
	for _, holders := range []int{200, 1000, 5000} {
		b.Run(fmt.Sprintf("holders=%d", holders), func(b *testing.B) {
			store := datasets.FraudNetwork(datasets.FraudConfig{AccountHolders: holders, SharingFraction: 0.15, Seed: 5})
			g := Wrap(store, Options{})
			runBenchQuery(b, g, `
				MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo)
				WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address
				WITH pInfo, collect(accHolder.uniqueId) AS accountHolders, count(*) AS fraudRingCount
				WHERE fraudRingCount > 1
				RETURN accountHolders, labels(pInfo) AS personalInformation, fraudRingCount`, nil)
		})
	}
}

func BenchmarkSection3Query(b *testing.B) {
	for _, researchers := range []int{50, 200} {
		b.Run(fmt.Sprintf("researchers=%d", researchers), func(b *testing.B) {
			store := datasets.CitationNetwork(datasets.CitationConfig{
				Researchers: researchers, PublicationsPerAuthor: 3, StudentsPerResearcher: 2, CitationsPerPaper: 2, Seed: 2,
			})
			g := Wrap(store, Options{})
			runBenchQuery(b, g, `
				MATCH (r:Researcher)
				OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
				WITH r, count(s) AS studentsSupervised
				MATCH (r)-[:AUTHORS]->(p1:Publication)
				OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
				RETURN r.name, studentsSupervised, count(DISTINCT p2) AS citedCount`, nil)
		})
	}
}

// --- B10: concurrent query serving (shared-lock reads + plan cache) ---

// BenchmarkConcurrentReads measures read-only query throughput under
// parallelism: every goroutine runs the same hot query, which after the
// first execution is served from the plan cache and executed under the
// engine's shared lock. Compare ns/op across -cpu settings: with the old
// single-mutex engine the throughput was flat, with the shared-lock path it
// scales with GOMAXPROCS.
func BenchmarkConcurrentReads(b *testing.B) {
	g := benchGraph(10000, 8)
	query := "MATCH (a:Person {name: 'person-17'})-[:KNOWS]->(b) RETURN count(b) AS c"
	if _, err := g.Run(query, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := g.Run(query, nil); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkConcurrentMixed adds a 5% mutating fraction: writers take the
// exclusive lock and invalidate cached plans, so this bounds the benefit of
// the read fast path under a realistic read-mostly workload.
func BenchmarkConcurrentMixed(b *testing.B) {
	g := benchGraph(10000, 8)
	read := "MATCH (a:Person {name: 'person-17'})-[:KNOWS]->(b) RETURN count(b) AS c"
	write := "CREATE (:Audit {at: 1})"
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := read
			if i%20 == 19 {
				q = write
			}
			i++
			if _, err := g.Run(q, nil); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPlanCache contrasts the hot path (plan served from cache) with a
// forced recompile (distinct query text every iteration, so lexer, parser,
// semantic analysis and planner all run).
func BenchmarkPlanCache(b *testing.B) {
	query := "MATCH (a:Person {name: 'person-17'})-[:KNOWS]->(b) RETURN count(b) AS c"
	b.Run("hit", func(b *testing.B) {
		g := benchGraph(100, 4)
		if _, err := g.Run(query, nil); err != nil {
			b.Fatal(err)
		}
		runBenchQuery(b, g, query, nil)
	})
	b.Run("miss", func(b *testing.B) {
		g := benchGraph(100, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := fmt.Sprintf("MATCH (a:Person {name: 'person-17'})-[:KNOWS]->(b) RETURN count(b) AS c%d", i)
			if _, err := g.Run(q, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- B11: morsel-driven intra-query parallelism ---

// parallelBenchGraph builds the large social graph once per worker setting;
// the same store is shared across sub-benchmarks via identical seeding.
func parallelBenchGraph(parallelism int) *Graph {
	store := datasets.SocialNetwork(datasets.SocialConfig{People: 50000, FriendsEach: 4, Seed: 42})
	return Wrap(store, Options{Parallelism: parallelism})
}

// BenchmarkParallelScan measures the scan→filter→expand→aggregate hot path
// at increasing intra-query worker counts against the serial baseline
// (parallelism=1). On a multi-core machine parallelism=8 should be >=2x
// faster than serial; on a single core it degrades gracefully to roughly
// serial speed (the pool is bounded by GOMAXPROCS scheduling, not by spin).
func BenchmarkParallelScan(b *testing.B) {
	query := "MATCH (p:Person)-[:KNOWS]->(q) WHERE p.age >= 30 AND q.age < p.age RETURN p.age AS age, count(*) AS c"
	for _, workers := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("parallelism=%d", workers)
		if workers == 1 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			g := parallelBenchGraph(workers)
			runBenchQuery(b, g, query, nil)
		})
	}
}

// BenchmarkParallelOrderBy exercises the order-preserving merge: the rows
// are produced in parallel, gathered per morsel, and sorted serially above
// the barrier.
func BenchmarkParallelOrderBy(b *testing.B) {
	query := "MATCH (p:Person) WHERE p.age > 30 RETURN p.name AS n, p.age AS age ORDER BY age, n LIMIT 100"
	for _, workers := range []int{1, 8} {
		name := fmt.Sprintf("parallelism=%d", workers)
		if workers == 1 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			g := parallelBenchGraph(workers)
			runBenchQuery(b, g, query, nil)
		})
	}
}

// --- B9: optimised engine vs the literal reference semantics ---

func BenchmarkEngineVsRefsem(b *testing.B) {
	store, _ := datasets.Citations()
	query := `
		MATCH (r:Researcher)
		OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
		WITH r, count(s) AS studentsSupervised
		MATCH (r)-[:AUTHORS]->(p1:Publication)
		OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
		RETURN r.name, studentsSupervised, count(DISTINCT p2) AS citedCount`
	b.Run("engine", func(b *testing.B) {
		g := Wrap(store, Options{})
		runBenchQuery(b, g, query, nil)
	})
	b.Run("refsem", func(b *testing.B) {
		parsed, err := parser.Parse(query)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := refsem.Evaluate(parsed, store, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- B10: persistence overhead ---
//
// Reads never touch the WAL (it only sees the mutation stream), so read
// latency and throughput with persistence enabled must track the in-memory
// numbers; BenchmarkDurableReads demonstrates it. Writes pay the journaling
// cost selected by SyncMode, measured in BenchmarkDurableWrites.

func durableBenchGraph(b *testing.B, mode SyncMode) *Graph {
	b.Helper()
	g, err := Open(b.TempDir(), Options{SyncMode: mode})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { g.Close() })
	return g
}

func BenchmarkDurableReads(b *testing.B) {
	const query = "MATCH (a:Person {name: 'person-17'})-[:KNOWS]->(b) RETURN count(b) AS c"
	b.Run("memory", func(b *testing.B) {
		runBenchQuery(b, benchGraph(5000, 8), query, nil)
	})
	b.Run("durable", func(b *testing.B) {
		g := durableBenchGraph(b, SyncAlways)
		if err := g.ImportFrom(datasets.SocialNetwork(datasets.SocialConfig{People: 5000, FriendsEach: 8, Seed: 42})); err != nil {
			b.Fatal(err)
		}
		runBenchQuery(b, g, query, nil)
	})
}

func BenchmarkDurableWrites(b *testing.B) {
	write := func(b *testing.B, g *Graph) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.Run("CREATE (:Event {seq: $i, tag: 'bench'})", map[string]any{"i": i}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("memory", func(b *testing.B) { write(b, New()) })
	b.Run("sync=none", func(b *testing.B) { write(b, durableBenchGraph(b, SyncNone)) })
	b.Run("sync=interval", func(b *testing.B) { write(b, durableBenchGraph(b, SyncInterval)) })
	b.Run("sync=always", func(b *testing.B) { write(b, durableBenchGraph(b, SyncAlways)) })
}

// --- B12 (PR 5): cost-based plan choice — index seeks vs scan+filter ---

// planChoice100k lazily builds two 100k-node Person graphs with uniformly
// distributed age (0..99, so one age value = 1% selectivity) and name
// properties: one with indexes on (Person, age) and (Person, name), one
// without. The pair isolates plan choice: the same range-predicate query
// compiles to an index range seek on the first graph and to the PR 4
// label-scan-plus-filter pipeline on the second.
var (
	planChoiceOnce    sync.Once
	planChoiceIndexed *Graph
	planChoicePlain   *Graph
)

func planChoice100k() (indexed, plain *Graph) {
	planChoiceOnce.Do(func() {
		build := func() *graph.Graph {
			g := graph.New()
			for i := 0; i < 100000; i++ {
				g.CreateNode([]string{"Person"}, map[string]value.Value{
					"age":  value.NewInt(int64(i % 100)),
					"name": value.NewString(fmt.Sprintf("p%05d", i)),
				})
			}
			return g
		}
		gi := build()
		gi.CreateIndex("Person", "age")
		gi.CreateIndex("Person", "name")
		planChoiceIndexed = Wrap(gi, Options{})
		planChoicePlain = Wrap(build(), Options{})
	})
	return planChoiceIndexed, planChoicePlain
}

// BenchmarkPlanChoice runs the same 1%-selectivity range query against the
// indexed and unindexed 100k graphs. CI gates the ratio: the seek plan must
// be at least 5x faster than the scan plan on the same CPU (cypher-benchcmp
// -require-ratio).
func BenchmarkPlanChoice(b *testing.B) {
	const query = "MATCH (n:Person) WHERE n.age < 1 RETURN count(n) AS c"
	indexed, plain := planChoice100k()
	b.Run("range-seek", func(b *testing.B) { runBenchQuery(b, indexed, query, nil) })
	b.Run("scan-filter", func(b *testing.B) { runBenchQuery(b, plain, query, nil) })
}

// BenchmarkIndexRangeSeek measures the ordered-index access paths on the
// indexed 100k graph: half-open and closed numeric ranges, a string prefix,
// and an IN-list seek.
func BenchmarkIndexRangeSeek(b *testing.B) {
	indexed, _ := planChoice100k()
	cases := []struct{ name, query string }{
		{"half-open", "MATCH (n:Person) WHERE n.age >= 99 RETURN count(n) AS c"},
		{"closed", "MATCH (n:Person) WHERE n.age > 42 AND n.age <= 43 RETURN count(n) AS c"},
		{"prefix", "MATCH (n:Person) WHERE n.name STARTS WITH 'p0000' RETURN count(n) AS c"},
		{"in-list", "MATCH (n:Person) WHERE n.age IN [7] RETURN count(n) AS c"},
		{"param-bound", "MATCH (n:Person) WHERE n.age > $k RETURN count(n) AS c"},
	}
	params := map[string]any{"k": 98}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { runBenchQuery(b, indexed, c.query, params) })
	}
}

// BenchmarkVectorizedScanFilter is the vectorized-execution headline
// measurement: one scan→filter→project query (no index on age, so the
// filter cannot become a seek) run row-at-a-time (BatchSize -1) and through
// the batched kernels (default BatchSize). The fused columnar filter drops
// failing rows before boxing their nodes into values, so the vectorized
// side must hold a ≥1.5× speedup — CI gates it via cypher-benchcmp
// -require-ratio.
func BenchmarkVectorizedScanFilter(b *testing.B) {
	const query = "MATCH (p:Person) WHERE p.age >= 30 AND p.age < 33 RETURN p.name AS name, p.age AS age"
	store := datasets.SocialNetwork(datasets.SocialConfig{People: 20000, FriendsEach: 2, Seed: 42})
	row := Wrap(store, Options{BatchSize: -1})
	vectorized := Wrap(store, Options{})
	b.Run("row", func(b *testing.B) { runBenchQuery(b, row, query, nil) })
	b.Run("vectorized", func(b *testing.B) { runBenchQuery(b, vectorized, query, nil) })
}

// BenchmarkExpandInto measures the bound-endpoints expansion: a hub node
// with 10k outgoing relationships against a spoke with exactly one incoming
// relationship. Probing the smaller (spoke) adjacency makes the probe O(1)
// instead of O(degree(hub)).
func BenchmarkExpandInto(b *testing.B) {
	g := graph.New()
	hub := g.CreateNode([]string{"Hub"}, nil)
	for i := 0; i < 10000; i++ {
		spoke := g.CreateNode([]string{"Spoke"}, map[string]value.Value{"sid": value.NewInt(int64(i))})
		if _, err := g.CreateRelationship(hub, spoke, "R", nil); err != nil {
			b.Fatal(err)
		}
	}
	g.CreateIndex("Spoke", "sid")
	wrapped := Wrap(g, Options{})
	runBenchQuery(b, wrapped,
		"MATCH (a:Hub) MATCH (b:Spoke {sid: 9999}) MATCH (a)-[:R]->(b) RETURN count(*) AS c", nil)
}

// BenchmarkReadLatencyUnderWrite is the MVCC headline measurement: the
// latency of a read query while a writer continuously commits deliberately
// slow write queries. Under the old exclusive-lock engine every read blocked
// for the remainder of the in-flight write, so the under-writer latency was
// unbounded (roughly half a write duration on average). Under MVCC readers
// pin the previously committed version and proceed, so the "under-writer"
// median must stay within a small factor of the "idle" median — CI gates
// under-writer ≤ 2× idle via cypher-benchcmp -require-max-ratio.
func BenchmarkReadLatencyUnderWrite(b *testing.B) {
	const readQ = "MATCH (p:Person) WHERE p.age > 30 RETURN count(p) AS c"
	// Each write commits 2000 node creates in one query: long enough that,
	// without MVCC, nearly every read would stall behind one.
	const writeQ = "UNWIND range(1, 2000) AS i CREATE (:Junk {j: i})"

	b.Run("idle", func(b *testing.B) {
		g := benchGraph(5000, 4)
		runBenchQuery(b, g, readQ, nil)
	})

	b.Run("under-writer", func(b *testing.B) {
		g := benchGraph(5000, 4)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if _, err := g.Run(writeQ, nil); err != nil {
					b.Error(err)
					return
				}
				// 50% duty cycle: a multi-millisecond write is in flight
				// about half the time. A writer that never yields would turn
				// this into a pure CPU-scheduling measurement on small
				// runners (on one core, a busy writer alone puts a 2x floor
				// on reader latency regardless of locking); with the duty
				// cycle, a reader that BLOCKED behind in-flight writes would
				// still show many multiples of idle latency, while one that
				// reads a pinned snapshot stays near it.
				time.Sleep(time.Since(start))
			}
		}()
		// Let the writer reach a mid-write steady state before measuring.
		for g.MVCCStats().Publishes == 0 {
			time.Sleep(time.Millisecond)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.Run(readQ, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// --- Replication: follower apply throughput and read latency ---

// junkBatch builds one replicated batch of n node creates with IDs starting
// at base, mirroring what DecodeBatch hands the follower's apply loop.
func junkBatch(base int64, n int) []graph.Mutation {
	muts := make([]graph.Mutation, n)
	for i := range muts {
		muts[i] = graph.Mutation{
			Kind: graph.MutCreateNode, ID: base + int64(i), Labels: []string{"Junk"},
			Props: map[string]value.Value{"j": value.NewInt(int64(i))},
		}
	}
	return muts
}

// followerGraph builds a read-only replica already holding the social
// benchmark dataset, as if it had replicated it from a leader.
func followerGraph(people, friends int) *Graph {
	g := benchGraph(people, friends)
	g.engine.SetFollowerOf("http://leader.invalid:7474")
	return g
}

// BenchmarkFollowerApply measures the replication apply path — decode a
// shipped WAL entry payload, run it through the engine's MVCC publish cycle —
// while 4 readers continuously pin snapshots, the steady state of a read
// replica serving traffic during catch-up. One op is one 100-record batch.
func BenchmarkFollowerApply(b *testing.B) {
	g := followerGraph(5000, 4)
	const batchSize = 100
	payload, err := storage.EncodeBatch(junkBatch(0, batchSize))
	if err != nil {
		b.Fatal(err)
	}

	const readQ = "MATCH (p:Person) WHERE p.age > 30 RETURN count(p) AS c"
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := g.Run(readQ, nil); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}

	base := int64(1) << 40 // clear of every dataset-assigned node ID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		muts, err := storage.DecodeBatch(payload)
		if err != nil {
			b.Fatal(err)
		}
		for j := range muts {
			muts[j].ID = base + int64(j)
		}
		base += batchSize
		if err := g.engine.ApplyReplicated(muts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(batchSize)*float64(b.N)/b.Elapsed().Seconds(), "entries/sec")
}

// BenchmarkFollowerReadLatency compares read latency on an idle leader with
// read latency on a follower that is continuously applying shipped batches at
// a 50% duty cycle (the same discipline as BenchmarkReadLatencyUnderWrite:
// without the duty cycle the measurement degenerates into CPU scheduling on
// small runners). Follower reads pin a published MVCC version and never block
// on apply, so CI gates follower-under-apply ≤ 2x leader-idle via
// cypher-benchcmp -require-max-ratio.
func BenchmarkFollowerReadLatency(b *testing.B) {
	const readQ = "MATCH (p:Person) WHERE p.age > 30 RETURN count(p) AS c"

	b.Run("leader-idle", func(b *testing.B) {
		g := benchGraph(5000, 4)
		runBenchQuery(b, g, readQ, nil)
	})

	b.Run("follower-under-apply", func(b *testing.B) {
		g := followerGraph(5000, 4)
		const batchSize = 2000
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := int64(1) << 40
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if err := g.engine.ApplyReplicated(junkBatch(base, batchSize)); err != nil {
					b.Error(err)
					return
				}
				base += batchSize
				time.Sleep(time.Since(start))
			}
		}()
		for g.MVCCStats().Publishes == 0 {
			time.Sleep(time.Millisecond)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.Run(readQ, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// --- B10: governance overhead (PR 9 robustness gate) ---

// BenchmarkReadThroughput measures the cost of the query-governance plumbing
// on a hot read: "bare" runs ungoverned (no context deadline, no budget, so
// no QueryCtx is even constructed), "governed" runs the same query under a
// generous deadline and memory budget so every cancellation tick and charge
// is live. CI holds governed within 5% of bare.
func BenchmarkReadThroughput(b *testing.B) {
	g := benchGraph(10000, 8)
	// A fused scan+filter+count over the whole graph: enough per-row work
	// that the gate measures the steady-state governance tax (cancellation
	// ticks, charge accounting) rather than the fixed few-microsecond cost
	// of building a context and timer per query, and nearly allocation-free
	// so GC noise does not swamp a 5% tolerance.
	const q = "MATCH (p:Person) WHERE p.age >= 30 AND p.age < 60 RETURN count(p) AS c"
	// Warm the plan cache and data structures before either sub-benchmark:
	// the 5% gate must compare governance overhead, not cold-start skew on
	// whichever variant happens to run first.
	for i := 0; i < 200; i++ {
		g.MustRun(q, nil)
	}
	b.Run("bare", func(b *testing.B) {
		runBenchQuery(b, g, q, nil)
	})
	b.Run("governed", func(b *testing.B) {
		opts := QueryOptions{Timeout: time.Hour, MemoryBudget: 1 << 30}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.QueryContext(context.Background(), q, nil, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
