package cypher

import (
	"repro/internal/core"
	"repro/internal/value"
)

// Result is the outcome of running a query: an ordered list of columns and a
// bag of rows.
type Result struct {
	inner *core.Result
}

// Columns returns the result column names in order.
func (r *Result) Columns() []string { return r.inner.Columns() }

// Len returns the number of rows.
func (r *Result) Len() int { return r.inner.Len() }

// Plan returns the textual form of the plan that produced the result.
func (r *Result) Plan() string { return r.inner.Plan }

// ReadOnly reports whether the query contained no updating clauses.
func (r *Result) ReadOnly() bool { return r.inner.ReadOnly }

// Parallelism reports how many workers executed the query (1 for a serial
// run; >1 when the engine chose morsel-driven parallel execution).
func (r *Result) Parallelism() int { return r.inner.Parallelism }

// Rows returns every row as native Go values (graph entities are returned as
// Node, Relationship and Path views).
func (r *Result) Rows() [][]any {
	out := make([][]any, 0, r.Len())
	for _, row := range r.inner.Rows() {
		conv := make([]any, len(row))
		for i, v := range row {
			conv[i] = value.ToGo(v)
		}
		out = append(out, conv)
	}
	return out
}

// Values returns every row as Cypher values.
func (r *Result) Values() [][]Value { return r.inner.Rows() }

// Records returns every row as a map from column name to native Go value.
func (r *Result) Records() []map[string]any {
	cols := r.Columns()
	out := make([]map[string]any, 0, r.Len())
	for _, row := range r.inner.Rows() {
		rec := make(map[string]any, len(cols))
		for i, c := range cols {
			rec[c] = value.ToGo(row[i])
		}
		out = append(out, rec)
	}
	return out
}

// String renders the result as an ASCII table in the layout used by the
// paper's figures.
func (r *Result) String() string { return r.inner.Table.String() }
