// Command quickstart shows the minimal end-to-end use of the cypher package:
// create a graph, load a little data with CREATE, and query it with MATCH.
package main

import (
	"fmt"

	cypher "repro"
)

func main() {
	g := cypher.New()

	// Load data: a tiny collaboration graph.
	g.MustRun(`
		CREATE (ada:Person {name: 'Ada', born: 1815}),
		       (grace:Person {name: 'Grace', born: 1906}),
		       (barbara:Person {name: 'Barbara', born: 1936}),
		       (ada)-[:INSPIRED {field: 'computing'}]->(grace),
		       (grace)-[:INSPIRED {field: 'compilers'}]->(barbara)`, nil)

	// A simple pattern-matching query.
	res := g.MustRun(`
		MATCH (a:Person)-[i:INSPIRED]->(b:Person)
		RETURN a.name AS inspirer, b.name AS inspired, i.field AS field
		ORDER BY inspirer`, nil)
	fmt.Println("Who inspired whom:")
	fmt.Print(res)

	// A variable-length pattern: everyone transitively inspired by Ada.
	res = g.MustRun(`
		MATCH (:Person {name: 'Ada'})-[:INSPIRED*]->(p:Person)
		RETURN p.name AS name, p.born AS born
		ORDER BY born`, nil)
	fmt.Println("\nTransitively inspired by Ada:")
	fmt.Print(res)

	// Parameters and aggregation.
	res = g.MustRun(`
		MATCH (p:Person)
		WHERE p.born >= $minYear
		RETURN count(*) AS modernPeople`, map[string]any{"minYear": 1900})
	fmt.Println("\nPeople born in or after 1900:")
	fmt.Print(res)

	// EXPLAIN shows the compiled plan.
	plan, err := g.Explain(`MATCH (a:Person {name: 'Ada'})-[:INSPIRED]->(b) RETURN b.name`)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nPlan for the lookup query:")
	fmt.Print(plan)
}
