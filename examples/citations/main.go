// Command citations reproduces the worked example of Section 3 of the paper
// on the Figure 1 data graph: for each researcher, the number of students
// they supervise and the number of distinct publications that (transitively)
// cite one of their publications.
package main

import (
	"fmt"

	cypher "repro"
	"repro/internal/datasets"
)

func main() {
	store, _ := datasets.Citations()
	g := cypher.Wrap(store, cypher.Options{})

	fmt.Println("Figure 1 data graph:", store.String())

	queries := []struct {
		title string
		query string
	}{
		{
			"Figure 2(a): researchers and the students they supervise (OPTIONAL MATCH)",
			`MATCH (r:Researcher)
			 OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
			 RETURN r.name AS researcher, s.name AS student`,
		},
		{
			"Figure 2(b): supervision counts (WITH ... count(s))",
			`MATCH (r:Researcher)
			 OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
			 WITH r, count(s) AS studentsSupervised
			 RETURN r.name AS researcher, studentsSupervised`,
		},
		{
			"Section 3, full query: supervision and citation counts",
			`MATCH (r:Researcher)
			 OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
			 WITH r, count(s) AS studentsSupervised
			 MATCH (r)-[:AUTHORS]->(p1:Publication)
			 OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
			 RETURN r.name, studentsSupervised, count(DISTINCT p2) AS citedCount`,
		},
		{
			"Most cited publication (variable-length CITES*)",
			`MATCH (p:Publication)<-[:CITES*]-(citing:Publication)
			 RETURN p.acmid AS acmid, count(DISTINCT citing) AS citations
			 ORDER BY citations DESC, acmid
			 LIMIT 3`,
		},
	}
	for _, q := range queries {
		fmt.Println()
		fmt.Println("==", q.title)
		fmt.Print(g.MustRun(q.query, nil))
	}
}
