// Command frauddetection runs the Section 3 fraud-detection industry query:
// finding rings of distinct account holders that share personal information
// (social security numbers, phone numbers, addresses).
package main

import (
	"fmt"

	cypher "repro"
	"repro/internal/datasets"
)

func main() {
	store := datasets.FraudNetwork(datasets.FraudConfig{
		AccountHolders:  500,
		SharingFraction: 0.08,
		Seed:            2024,
	})
	g := cypher.Wrap(store, cypher.Options{})
	fmt.Println("Synthetic account graph:", store.String())

	// The query from the paper, extended with an ordering for readability.
	res := g.MustRun(`
		MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo)
		WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address
		WITH pInfo,
		     collect(accHolder.uniqueId) AS accountHolders,
		     count(*) AS fraudRingCount
		WHERE fraudRingCount > 1
		RETURN accountHolders,
		       labels(pInfo) AS personalInformation,
		       fraudRingCount
		ORDER BY fraudRingCount DESC
		LIMIT 10`, nil)

	fmt.Println("\nLargest potential fraud rings (shared personal information):")
	fmt.Print(res)

	// Follow-up analysis: pairs of account holders linked through any shared
	// identifier, a typical second investigative step.
	res = g.MustRun(`
		MATCH (a:AccountHolder)-[:HAS]->(info)<-[:HAS]-(b:AccountHolder)
		WHERE a.uniqueId < b.uniqueId
		RETURN count(*) AS linkedPairs`, nil)
	fmt.Println("\nAccount-holder pairs sharing at least one identifier:")
	fmt.Print(res)
}
