// Command datacenter runs the Section 3 network-management industry query:
// in a graph of services connected by DEPENDS_ON relationships, find the
// component that the largest number of other services depend upon, directly
// or indirectly.
package main

import (
	"fmt"

	cypher "repro"
	"repro/internal/datasets"
)

func main() {
	store := datasets.DataCenter(datasets.DataCenterConfig{
		Services:  250,
		MaxDeps:   3,
		ExtraTier: 50,
		Seed:      7,
	})
	g := cypher.Wrap(store, cypher.Options{})
	fmt.Println("Synthetic data-center graph:", store.String())

	// The query from the paper.
	res := g.MustRun(`
		MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
		RETURN svc.name AS service, count(DISTINCT dep) AS dependents
		ORDER BY dependents DESC
		LIMIT 1`, nil)
	fmt.Println("\nMost depended-upon service (direct and indirect dependents):")
	fmt.Print(res)

	// The top ten, for context.
	res = g.MustRun(`
		MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
		RETURN svc.name AS service, count(DISTINCT dep) AS dependents
		ORDER BY dependents DESC, service
		LIMIT 10`, nil)
	fmt.Println("\nTop ten services by transitive dependents:")
	fmt.Print(res)

	// Impact analysis for one service: everything that would be affected if
	// it failed, grouped by distance.
	res = g.MustRun(`
		MATCH p = (svc:Service {name: 'svc-0'})<-[:DEPENDS_ON*1..3]-(dep:Service)
		RETURN length(p) AS distance, count(DISTINCT dep) AS affected
		ORDER BY distance`, nil)
	fmt.Println("\nBlast radius of svc-0 by dependency distance:")
	fmt.Print(res)
}
