package cypher

// End-to-end tests for vectorized batch execution: differential runs of the
// engine across batch sizes (including row-at-a-time) and worker counts,
// byte-identical output required everywhere, with the reference semantics as
// the independent oracle. Batch sizes 1 and 3 force batch boundaries inside
// every operator; 1024 is the production default.

import (
	"sync"
	"testing"

	"repro/internal/datasets"
	"repro/internal/parser"
	"repro/internal/refsem"
	"repro/internal/result"
)

// vectorizedCorpus leans on the batchable segment — scans and seeks under
// filters, projections, expands and limits — plus shapes that exercise the
// batched/row boundary (aggregation, sorting, DISTINCT, OPTIONAL MATCH,
// var-length paths) and the fallbacks (UNION, updating-free WITH chains).
var vectorizedCorpus = []string{
	// Pure batched pipelines: scan -> [filter] -> project -> select.
	"MATCH (p:Person) RETURN p.name AS name ORDER BY name",
	"MATCH (p:Person) WHERE p.age >= 30 AND p.age < 40 RETURN p.name AS name, p.age AS age ORDER BY age, name",
	"MATCH (p:Person) WHERE 35 < p.age RETURN count(*) AS c",
	"MATCH (p:Person) WHERE p.name STARTS WITH 'person-1' RETURN p.name AS name ORDER BY name",
	"MATCH (p:Person) WHERE p.age IN [20, 30, 40] RETURN p.name AS name ORDER BY name",
	// Null-property comparisons: missing properties compare as null and are
	// filtered out on both paths.
	"MATCH (p:Person) WHERE p.missing > 1 RETURN count(*) AS c",
	"MATCH (p:Person) WHERE p.age > 30 OR p.age < 5 RETURN count(*) AS c",
	"MATCH (p:Person) WHERE NOT p.age < 50 RETURN count(*) AS c",
	// Batched expand, with and without a relationship variable, both
	// directions, plus uniqueness constraints from two-hop patterns.
	"MATCH (a:Person)-[:KNOWS]->(b) RETURN a.name AS a, b.name AS b",
	"MATCH (a:Person)-[r:KNOWS]->(b) WHERE a.age < b.age RETURN count(r) AS c",
	"MATCH (a:Person)<-[:KNOWS]-(b) RETURN count(*) AS c",
	"MATCH (a:Person)--(b) RETURN count(*) AS c",
	"MATCH (a:Person)-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN count(*) AS c",
	// LIMIT inside the batched segment (no barrier above the scan).
	"MATCH (p:Person) RETURN p.name AS name ORDER BY name LIMIT 7",
	// Row-path shapes above the batched prefix: aggregation, DISTINCT,
	// OPTIONAL MATCH, WITH scope cuts, var-length paths, UNWIND, UNION.
	"MATCH (p:Person) RETURN p.age AS age, count(*) AS c ORDER BY age",
	"MATCH (a:Person)-[:KNOWS]->(b) RETURN DISTINCT b.name AS name ORDER BY name",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b) WHERE b.age > 60 RETURN a.name AS name, count(b) AS friends ORDER BY name",
	"MATCH (p:Person) WITH p.age AS age WHERE age > 55 RETURN count(*) AS c",
	"MATCH (a:Person)-[:KNOWS*1..2]->(b) RETURN count(*) AS c",
	"UNWIND [3, 1, 2] AS x MATCH (p:Person {age: x}) RETURN x, p.name AS name ORDER BY x, name",
	"MATCH (p:Person) WHERE p.age < 3 RETURN p.name AS n UNION MATCH (p:Person) WHERE p.age > 97 RETURN p.name AS n",
}

// TestVectorizedDifferentialBatchSizes runs the corpus at batch sizes 1, 3
// and 1024 and at 1, 4 and 8 workers, requiring byte-identical output to the
// row-at-a-time serial engine, and checks the row engine against the
// reference semantics so the whole family is anchored to the spec.
func TestVectorizedDifferentialBatchSizes(t *testing.T) {
	store := datasets.SocialNetwork(datasets.SocialConfig{People: 100, FriendsEach: 4, Seed: 42})
	row := Wrap(store, Options{BatchSize: -1})
	type cfg struct {
		batch   int
		workers int
	}
	cfgs := []cfg{
		{1, 1}, {3, 1}, {1024, 1},
		{-1, 4}, {1, 4}, {3, 4}, {1024, 4},
		{3, 8}, {1024, 8},
	}
	engines := make(map[cfg]*Graph, len(cfgs))
	for _, c := range cfgs {
		engines[c] = Wrap(store, Options{BatchSize: c.batch, Parallelism: c.workers, MorselSize: 16})
	}
	for _, q := range vectorizedCorpus {
		want := row.MustRun(q, nil)
		for _, c := range cfgs {
			got := engines[c].MustRun(q, nil)
			if got.String() != want.String() {
				t.Errorf("batch=%d workers=%d diverged from row-at-a-time for %s\ngot:\n%s\nwant:\n%s",
					c.batch, c.workers, q, got.String(), want.String())
			}
		}
		parsed, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("parse %s: %v", q, err)
		}
		ref, err := refsem.Evaluate(parsed, store, nil)
		if err != nil {
			t.Fatalf("refsem %s: %v", q, err)
		}
		if !result.EqualAsBags(want.inner.Table, ref) {
			t.Errorf("engine disagrees with the reference semantics for %s\nengine:\n%s\nreference:\n%s",
				q, want.String(), ref.String())
		}
	}
}

// TestVectorizedDisabledOption checks BatchSize < 0 really pins the row
// path: the option exists so benchmarks and bisection can isolate the
// vectorized runtime, and it must not change results.
func TestVectorizedDisabledOption(t *testing.T) {
	g := NewWithOptions(Options{BatchSize: -1})
	for i := 0; i < 10; i++ {
		g.MustRun("CREATE (:N {i: $i})", map[string]any{"i": i})
	}
	res := g.MustRun("MATCH (n:N) WHERE n.i >= 5 RETURN count(*) AS c", nil)
	if got := res.Records()[0]["c"]; got != int64(5) {
		t.Fatalf("count = %v, want 5", got)
	}
}

// TestVectorizedRaceHammer drives batched pipelines from many goroutines on
// shared engines, checking every result against a precomputed answer. Under
// -race this proves the pooled batches never leak across queries or
// workers; without -race a dirty pooled batch still shows up as a wrong
// row count or value.
func TestVectorizedRaceHammer(t *testing.T) {
	store := datasets.SocialNetwork(datasets.SocialConfig{People: 300, FriendsEach: 4, Seed: 9})
	serial := Wrap(store, Options{})
	parallel := Wrap(store, Options{Parallelism: 4, MorselSize: 32})
	queries := []string{
		"MATCH (p:Person) WHERE p.age >= 20 AND p.age < 60 RETURN count(*) AS c",
		"MATCH (a:Person)-[:KNOWS]->(b) WHERE b.age > 40 RETURN count(*) AS c",
		"MATCH (p:Person) WHERE p.name STARTS WITH 'person-2' RETURN count(*) AS c",
		"MATCH (a:Person)-[r:KNOWS]->(b) RETURN count(r) AS c",
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = serial.MustRun(q, nil).String()
		if got := parallel.MustRun(q, nil).String(); got != want[i] {
			t.Fatalf("parallel warm-up diverged for %s", q)
		}
	}
	const goroutines = 8
	const iterations = 25
	var wg sync.WaitGroup
	errCh := make(chan string, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			eng := serial
			if gi%2 == 1 {
				eng = parallel
			}
			for i := 0; i < iterations; i++ {
				qi := (gi + i) % len(queries)
				res, err := eng.Run(queries[qi], nil)
				if err != nil {
					errCh <- err.Error()
					return
				}
				if res.String() != want[qi] {
					errCh <- "goroutine result diverged for " + queries[qi] + ":\n" + res.String() + "\nwant:\n" + want[qi]
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errCh)
	if msg := <-errCh; msg != "" {
		t.Fatal(msg)
	}
}
